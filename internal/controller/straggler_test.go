package controller

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathdump/internal/query"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// stallOnceTransport answers like slowTransport except that the first
// attempt at slowHost blocks until its context is cancelled — the classic
// straggler a hedged duplicate request is meant to beat. Later attempts
// (the hedge) answer at normal speed.
type stallOnceTransport struct {
	slowTransport
	slowHost     types.HostID
	slowAttempts atomic.Int64
}

func (s *stallOnceTransport) Query(ctx context.Context, host types.HostID, q query.Query) (query.Result, QueryMeta, error) {
	if host == s.slowHost && s.slowAttempts.Add(1) == 1 {
		<-ctx.Done()
		return query.Result{}, QueryMeta{}, ctx.Err()
	}
	return s.slowTransport.Query(ctx, host, q)
}

// stallSetTransport stalls a fixed set of hosts forever (until cancelled)
// and answers the rest after an optional per-call random jitter drawn
// from jitter (nil = the base fixed delay).
type stallSetTransport struct {
	slowTransport
	stalled map[types.HostID]bool

	mu     sync.Mutex
	jitter *rand.Rand
	maxJit time.Duration
}

func (s *stallSetTransport) Query(ctx context.Context, host types.HostID, q query.Query) (query.Result, QueryMeta, error) {
	if s.stalled[host] {
		<-ctx.Done()
		return query.Result{}, QueryMeta{}, ctx.Err()
	}
	if s.jitter != nil {
		s.mu.Lock()
		d := time.Duration(s.jitter.Int63n(int64(s.maxJit)))
		s.mu.Unlock()
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return query.Result{}, QueryMeta{}, ctx.Err()
		}
	}
	return s.slowTransport.Query(ctx, host, q)
}

// TestHedgedRequestBeatsStraggler is the hedging acceptance test: a
// 64-host direct query where one host's primary request stalls forever
// must still complete with every host's data — the duplicate issued after
// HedgeAfter wins the race — within roughly one hedged round trip, and
// without leaking the losing attempt's goroutine. Without hedging this
// query would hang until the caller's deadline.
func TestHedgedRequestBeatsStraggler(t *testing.T) {
	const (
		hosts      = 64
		delay      = 10 * time.Millisecond
		hedgeAfter = 50 * time.Millisecond
	)
	topo, _ := topology.FatTree(4)
	tr := &stallOnceTransport{slowTransport: slowTransport{delay: delay}, slowHost: 13}
	ctrl := New(topo, tr, nil)
	ctrl.HedgeAfter = hedgeAfter

	before := runtime.NumGoroutine()
	start := time.Now()
	res, stats, err := ctrl.Execute(hostRange(hosts), query.Query{Op: query.OpTopK, K: hosts})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hosts != hosts || stats.Skipped != 0 || stats.Partial {
		t.Errorf("stats = %+v, want all %d hosts and no partial flag", stats, hosts)
	}
	if stats.Hedged < 1 {
		t.Error("ExecStats.Hedged = 0, want the duplicate request counted")
	}
	if len(res.Top) != hosts {
		t.Errorf("merged %d top entries, want %d (the stalled host's data must come via the hedge)", len(res.Top), hosts)
	}
	// ~1 hedged round trip: hedgeAfter + one normal delay, with generous
	// CI headroom. The point is that it is nowhere near a deadline or a
	// hang.
	if limit := hedgeAfter + 10*delay + 200*time.Millisecond; elapsed > limit {
		t.Errorf("hedged query took %v, want under %v", elapsed, limit)
	}
	if got := tr.slowAttempts.Load(); got < 2 {
		t.Errorf("stalled host saw %d attempts, want primary + hedge", got)
	}
	awaitGoroutineBaseline(t, before)
}

// TestHedgeRespectsParallelismBound: hedges draw real slots, so even with
// hedging firing the transport never sees more than Parallelism
// concurrent requests.
func TestHedgeRespectsParallelismBound(t *testing.T) {
	topo, _ := topology.FatTree(4)
	tr := &stallOnceTransport{slowTransport: slowTransport{delay: 5 * time.Millisecond}, slowHost: 3}
	ctrl := New(topo, tr, nil)
	ctrl.Parallelism = 4
	ctrl.HedgeAfter = 20 * time.Millisecond
	if _, stats, err := ctrl.Execute(hostRange(32), query.Query{Op: query.OpTopK, K: 32}); err != nil {
		t.Fatal(err)
	} else if stats.Hosts != 32 {
		t.Errorf("answered %d hosts, want 32", stats.Hosts)
	}
	if got := tr.maxSeen.Load(); got > 4 {
		t.Errorf("saw %d concurrent requests, bound was 4 (hedges must hold real slots)", got)
	}
}

// TestHedgeUnderFullPool: when every Parallelism slot is busy at hedge
// time — here the stalled primary holds the only slot there is — the
// hedge must not starve waiting for a second slot: it cancels the
// primary and retries on the slot the host already holds. The query
// completes, the bound is never exceeded, and nothing hangs.
func TestHedgeUnderFullPool(t *testing.T) {
	const (
		hosts      = 8
		delay      = 5 * time.Millisecond
		hedgeAfter = 30 * time.Millisecond
	)
	topo, _ := topology.FatTree(4)
	tr := &stallOnceTransport{slowTransport: slowTransport{delay: delay}, slowHost: 0}
	ctrl := New(topo, tr, nil)
	ctrl.Parallelism = 1
	ctrl.HedgeAfter = hedgeAfter

	before := runtime.NumGoroutine()
	start := time.Now()
	res, stats, err := ctrl.Execute(hostRange(hosts), query.Query{Op: query.OpTopK, K: hosts})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hosts != hosts || len(res.Top) != hosts {
		t.Errorf("answered %d hosts, merged %d entries, want %d", stats.Hosts, len(res.Top), hosts)
	}
	if stats.Hedged != 1 {
		t.Errorf("Hedged = %d, want exactly the one retry", stats.Hedged)
	}
	if got := tr.maxSeen.Load(); got != 1 {
		t.Errorf("saw %d concurrent requests at Parallelism 1 — the retry must reuse the vacated slot", got)
	}
	if limit := time.Duration(hosts)*delay + hedgeAfter + delay + 500*time.Millisecond; elapsed > limit {
		t.Errorf("query took %v, want under %v (no starvation)", elapsed, limit)
	}
	awaitGoroutineBaseline(t, before)
}

// TestPerHostTimeoutDropsStraggler: a host that stalls past its per-host
// budget is dropped — the query succeeds with the other 63 hosts' merged
// data, Partial set, within roughly the budget rather than any caller
// deadline.
func TestPerHostTimeoutDropsStraggler(t *testing.T) {
	const (
		hosts  = 64
		delay  = 5 * time.Millisecond
		budget = 60 * time.Millisecond
	)
	topo, _ := topology.FatTree(4)
	tr := &stallSetTransport{slowTransport: slowTransport{delay: delay}, stalled: map[types.HostID]bool{13: true}}
	ctrl := New(topo, tr, nil)
	ctrl.PerHostTimeout = budget

	before := runtime.NumGoroutine()
	start := time.Now()
	res, stats, err := ctrl.Execute(hostRange(hosts), query.Query{Op: query.OpTopK, K: hosts})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("per-host timeout must drop the straggler, not fail the query: %v", err)
	}
	if stats.Hosts != hosts-1 || stats.Skipped != 1 || !stats.Partial {
		t.Errorf("stats = %+v, want 63 answered / 1 skipped / partial", stats)
	}
	if len(res.Top) != hosts-1 {
		t.Errorf("merged %d top entries, want %d", len(res.Top), hosts-1)
	}
	if limit := budget + 10*delay + 200*time.Millisecond; elapsed > limit {
		t.Errorf("query took %v, want ~the per-host budget %v", elapsed, budget)
	}
	awaitGoroutineBaseline(t, before)
}

// TestPerHostTimeoutInTree: the budget drops a stalled interior
// aggregation host while its subtree's children still merge through the
// surviving levels.
func TestPerHostTimeoutInTree(t *testing.T) {
	const hosts = 64
	topo, _ := topology.FatTree(4)
	// buildLevels(hosts, [4,2]) makes hosts 0,16,32,48 aggregation nodes;
	// stall one of them.
	tr := &stallSetTransport{slowTransport: slowTransport{delay: 3 * time.Millisecond}, stalled: map[types.HostID]bool{16: true}}
	ctrl := New(topo, tr, nil)
	ctrl.PerHostTimeout = 50 * time.Millisecond

	res, stats, err := ctrl.ExecuteTree(hostRange(hosts), query.Query{Op: query.OpTopK, K: hosts}, []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hosts != hosts-1 || stats.Skipped != 1 || !stats.Partial {
		t.Errorf("stats = %+v, want only the stalled aggregation host missing", stats)
	}
	for _, fb := range res.Top {
		if fb.Flow.SrcIP == types.IP(16) {
			t.Errorf("dropped host 16's data appeared in the merge")
		}
	}
	if len(res.Top) != hosts-1 {
		t.Errorf("merged %d entries, want %d — the dropped node's children must still be merged", len(res.Top), hosts-1)
	}
}

// TestPartialOnDeadline: with PartialOnDeadline, a whole-query deadline
// expiry returns whatever was merged (Partial set, nil error) instead of
// DeadlineExceeded; without it the existing error behaviour stands, and
// explicit cancellation always errors.
func TestPartialOnDeadline(t *testing.T) {
	const (
		hosts = 64
		delay = 40 * time.Millisecond
	)
	topo, _ := topology.FatTree(4)

	t.Run("partial", func(t *testing.T) {
		tr := &slowTransport{delay: delay}
		ctrl := New(topo, tr, nil)
		ctrl.Parallelism = 4
		ctrl.PartialOnDeadline = true
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		res, stats, err := ctrl.ExecuteContext(ctx, hostRange(hosts), query.Query{Op: query.OpTopK, K: hosts})
		if err != nil {
			t.Fatalf("partial mode returned error %v, want merged partial result", err)
		}
		if !stats.Partial || stats.Skipped == 0 || stats.Hosts == 0 {
			t.Errorf("stats = %+v, want a genuine partial (some answered, some skipped)", stats)
		}
		if stats.Hosts+stats.Skipped != hosts {
			t.Errorf("answered %d + skipped %d != %d", stats.Hosts, stats.Skipped, hosts)
		}
		if len(res.Top) != stats.Hosts {
			t.Errorf("merged %d entries but %d hosts answered", len(res.Top), stats.Hosts)
		}
		awaitGoroutineBaseline(t, before)
	})

	t.Run("error-without-optin", func(t *testing.T) {
		tr := &slowTransport{delay: delay}
		ctrl := New(topo, tr, nil)
		ctrl.Parallelism = 4
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		_, _, err := ctrl.ExecuteContext(ctx, hostRange(hosts), query.Query{Op: query.OpTopK, K: hosts})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want DeadlineExceeded without the partial opt-in", err)
		}
	})

	t.Run("cancel-still-errors", func(t *testing.T) {
		tr := &slowTransport{delay: delay}
		ctrl := New(topo, tr, nil)
		ctrl.Parallelism = 4
		ctrl.PartialOnDeadline = true
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(60 * time.Millisecond)
			cancel()
		}()
		_, _, err := ctrl.ExecuteContext(ctx, hostRange(hosts), query.Query{Op: query.OpTopK, K: hosts})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled — partial mode must not swallow explicit cancellation", err)
		}
	})

	t.Run("real-error-still-fails", func(t *testing.T) {
		tr := &failTransport{slowTransport: slowTransport{delay: 2 * time.Millisecond}, bad: 7}
		ctrl := New(topo, tr, nil)
		ctrl.PartialOnDeadline = true
		ctrl.PerHostTimeout = 500 * time.Millisecond
		_, _, err := ctrl.Execute(hostRange(hosts), query.Query{Op: query.OpTopK, K: hosts})
		if err == nil || err.Error() != "host h7 exploded" {
			t.Fatalf("err = %v, want the real host failure — straggler tolerance must not mask it", err)
		}
	})
}

// TestPartialDeterminism is the satellite acceptance test: the same set
// of answering hosts, completing in different orders run to run, must
// yield byte-identical merged output and identical ExecStats. OpFlows is
// used deliberately — its merged slice order exposes merge-order
// nondeterminism that sorted ops (top-k) would hide.
func TestPartialDeterminism(t *testing.T) {
	const (
		hosts  = 64
		maxJit = 30 * time.Millisecond
	)
	topo, _ := topology.FatTree(4)
	stalled := make(map[types.HostID]bool)
	for h := types.HostID(32); h < hosts; h++ {
		stalled[h] = true
	}

	runOnce := func(seed int64) (query.Result, ExecStats) {
		tr := &stallSetTransport{
			slowTransport: slowTransport{delay: time.Millisecond},
			stalled:       stalled,
			jitter:        rand.New(rand.NewSource(seed)),
			maxJit:        maxJit,
		}
		ctrl := New(topo, tr, nil)
		ctrl.PartialOnDeadline = true
		ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
		defer cancel()
		res, stats, err := ctrl.ExecuteContext(ctx, hostRange(hosts), query.Query{Op: query.OpTopK, K: hosts})
		if err != nil {
			t.Fatal(err)
		}
		return res, stats
	}

	base, baseStats := runOnce(1)
	if baseStats.Hosts != 32 || baseStats.Skipped != 32 || !baseStats.Partial {
		t.Fatalf("stats = %+v, want exactly the 32 live hosts answered", baseStats)
	}
	baseStats.Trace = nil
	for seed := int64(2); seed <= 4; seed++ {
		res, stats := runOnce(seed)
		if !reflect.DeepEqual(res, base) {
			t.Fatalf("seed %d: merged result differs from baseline despite identical answering set", seed)
		}
		// Every execution carries its own span tree; only the stats
		// themselves must be deterministic.
		stats.Trace = nil
		if stats != baseStats {
			t.Fatalf("seed %d: ExecStats %+v differ from baseline %+v", seed, stats, baseStats)
		}
	}
}

// TestPerHostTimeoutModelCap: the §5.2 model learns the per-host budget —
// a modelled straggler is charged at most the budget, so the modelled
// response time of a partial query stays near the budget instead of the
// straggler's full service time.
func TestPerHostTimeoutModelCap(t *testing.T) {
	topo, _ := topology.FatTree(4)
	hosts := hostRange(16)
	q := query.Query{Op: query.OpTopK, K: 100}

	// Huge per-host TIBs make modelled per-host service far exceed the cap.
	ctrl := New(topo, cannedTransport{k: 100, records: 50_000_000}, nil)
	ctrl.Cost.PerHostTimeout = 5 * types.Millisecond
	_, stats, err := ctrl.Execute(hosts, q)
	if err != nil {
		t.Fatal(err)
	}
	// 16 parallel children, each capped at 5 ms, plus merge costs: the
	// response must be of the cap's order, not the ~20 s of a 50M-record
	// scan.
	if stats.ResponseTime > 100*types.Millisecond {
		t.Errorf("modelled response %v ignores the per-host cap %v", stats.ResponseTime, ctrl.Cost.PerHostTimeout)
	}

	uncapped := New(topo, cannedTransport{k: 100, records: 50_000_000}, nil)
	_, full, err := uncapped.Execute(hosts, q)
	if err != nil {
		t.Fatal(err)
	}
	if full.ResponseTime <= stats.ResponseTime {
		t.Errorf("uncapped model %v not above capped %v", full.ResponseTime, stats.ResponseTime)
	}
}
