package controller

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"pathdump/internal/query"
	"pathdump/internal/types"
)

// flakyTransport fails each host's first failFirst queries with a real
// transport error, then answers. Thread-safe; counts attempts.
type flakyTransport struct {
	mu        sync.Mutex
	failFirst int
	attempts  map[types.HostID]int
	err       error // error to fail with (default: a plain transport error)
}

func newFlaky(failFirst int, err error) *flakyTransport {
	if err == nil {
		// A realistic dial failure: *net.OpError reaches the controller
		// wrapped, exactly like http.Client returns it inside *url.Error.
		err = &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("connection refused")}
	}
	return &flakyTransport{failFirst: failFirst, attempts: map[types.HostID]int{}, err: err}
}

func (f *flakyTransport) Query(ctx context.Context, h types.HostID, q query.Query) (query.Result, QueryMeta, error) {
	if err := ctx.Err(); err != nil {
		return query.Result{}, QueryMeta{}, err
	}
	f.mu.Lock()
	f.attempts[h]++
	n := f.attempts[h]
	f.mu.Unlock()
	if n <= f.failFirst {
		return query.Result{}, QueryMeta{}, fmt.Errorf("host %v attempt %d: %w", h, n, f.err)
	}
	return query.Result{Op: q.Op, Bytes: uint64(h)}, QueryMeta{RecordsScanned: 1}, nil
}

func (f *flakyTransport) Install(ctx context.Context, h types.HostID, q query.Query, p types.Time) (int, error) {
	return 0, errors.New("not used")
}
func (f *flakyTransport) Uninstall(ctx context.Context, h types.HostID, id int) error {
	return errors.New("not used")
}

// statusErr mimics rpc.StatusError: the server answered authoritatively.
type statusErr struct{ code int }

func (e *statusErr) Error() string   { return fmt.Sprintf("HTTP %d", e.code) }
func (e *statusErr) HTTPStatus() int { return e.code }

// TestRetryTransientTransportError: bounded retries with backoff recover
// hosts whose first attempts hit real transport failures, and the stats
// report every re-issued request.
func TestRetryTransientTransportError(t *testing.T) {
	tr := newFlaky(2, nil) // each host fails twice, then answers
	c := New(nil, tr, nil)
	c.RetryAttempts = 3
	c.RetryBackoff = time.Millisecond
	hosts := []types.HostID{1, 2, 3, 4}

	res, stats, err := c.Execute(hosts, query.Query{Op: query.OpCount})
	if err != nil {
		t.Fatalf("Execute with retries = %v", err)
	}
	if res.Bytes != 1+2+3+4 {
		t.Errorf("merged result = %d, want every host's data", res.Bytes)
	}
	if stats.Hosts != 4 || stats.Partial {
		t.Errorf("stats = %+v, want 4 full hosts", stats)
	}
	if stats.Retried != 2*len(hosts) {
		t.Errorf("Retried = %d, want %d (two per host)", stats.Retried, 2*len(hosts))
	}
	if stats.Hedged != 0 {
		t.Errorf("Hedged = %d — retries must not count as hedges", stats.Hedged)
	}
}

// TestRetryExhausted: a host that keeps failing exhausts its attempts and
// the execution fails with the transport error (retry is not partiality).
func TestRetryExhausted(t *testing.T) {
	tr := newFlaky(10, nil)
	c := New(nil, tr, nil)
	c.RetryAttempts = 2
	c.RetryBackoff = time.Millisecond

	_, stats, err := c.Execute([]types.HostID{1}, query.Query{Op: query.OpCount})
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want the transport error, got %v", err)
	}
	if got := tr.attempts[1]; got != 3 {
		t.Errorf("attempts = %d, want 1 primary + 2 retries", got)
	}
	if stats.Retried != 2 {
		t.Errorf("Retried = %d, want 2", stats.Retried)
	}
}

// TestNoRetryOnStatusError: an authoritative HTTP answer (a 501, say) is
// the server's decision — re-asking cannot change it, so it is never
// retried.
func TestNoRetryOnStatusError(t *testing.T) {
	tr := newFlaky(10, &statusErr{code: 501})
	c := New(nil, tr, nil)
	c.RetryAttempts = 5
	c.RetryBackoff = time.Millisecond

	_, stats, err := c.Execute([]types.HostID{1}, query.Query{Op: query.OpPoorTCP})
	var se *statusErr
	if !errors.As(err, &se) {
		t.Fatalf("want the status error, got %v", err)
	}
	if got := tr.attempts[1]; got != 1 {
		t.Errorf("attempts = %d — status errors must not be retried", got)
	}
	if stats.Retried != 0 {
		t.Errorf("Retried = %d, want 0", stats.Retried)
	}
}

// TestNoRetryOnPermanentError: configuration errors (unknown host, no
// URL) and other non-network failures cannot heal by re-asking, so the
// whitelist classification skips them even with retries enabled.
func TestNoRetryOnPermanentError(t *testing.T) {
	tr := newFlaky(10, errors.New("rpc: no URL for host h1"))
	c := New(nil, tr, nil)
	c.RetryAttempts = 5
	c.RetryBackoff = time.Millisecond

	_, stats, err := c.Execute([]types.HostID{1}, query.Query{Op: query.OpCount})
	if err == nil {
		t.Fatal("permanent error swallowed")
	}
	if got := tr.attempts[1]; got != 1 {
		t.Errorf("attempts = %d — permanent errors must not be retried", got)
	}
	if stats.Retried != 0 {
		t.Errorf("Retried = %d, want 0", stats.Retried)
	}
}

// TestNoRetryWithoutOptIn: RetryAttempts = 0 preserves fail-fast.
func TestNoRetryWithoutOptIn(t *testing.T) {
	tr := newFlaky(1, nil)
	c := New(nil, tr, nil)
	if _, _, err := c.Execute([]types.HostID{1}, query.Query{Op: query.OpCount}); err == nil {
		t.Fatal("transport error swallowed without retry opt-in")
	}
	if got := tr.attempts[1]; got != 1 {
		t.Errorf("attempts = %d, want 1", got)
	}
}

// TestRetryHonoursCancellation: a caller cancelling mid-backoff gets its
// context error promptly instead of the full backoff schedule.
func TestRetryHonoursCancellation(t *testing.T) {
	tr := newFlaky(100, nil)
	c := New(nil, tr, nil)
	c.RetryAttempts = 10
	c.RetryBackoff = 10 * time.Second // would take ages if not interruptible

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := c.ExecuteContext(ctx, []types.HostID{1}, query.Query{Op: query.OpCount})
	if err == nil {
		t.Fatal("cancelled execution succeeded")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("cancellation took %v — backoff not interruptible", took)
	}
}

// TestRetrySegmentStatsFlow: QueryMeta segment telemetry propagates into
// ExecStats and the §5.2 pruned-fraction term discounts the modelled
// scan cost.
func TestRetrySegmentStatsFlow(t *testing.T) {
	seg := segTransport{scanned: 2, pruned: 18, records: 10_000}
	c := New(nil, seg, nil)
	_, stats, err := c.Execute([]types.HostID{1, 2}, query.Query{Op: query.OpCount})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsScanned != 4 || stats.SegmentsPruned != 36 {
		t.Errorf("segment stats = %d/%d, want 4/36", stats.SegmentsScanned, stats.SegmentsPruned)
	}

	// Pruned fraction discounts modelled exec: 2/20 of the records at
	// ExecPerRecord versus all of them without telemetry.
	full := New(nil, segTransport{records: 10_000}, nil)
	_, fullStats, err := full.Execute([]types.HostID{1, 2}, query.Query{Op: query.OpCount})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResponseTime >= fullStats.ResponseTime {
		t.Errorf("pruned query modelled at %v, full scan at %v — pruning must model cheaper",
			stats.ResponseTime, fullStats.ResponseTime)
	}
}

// segTransport reports fixed segment telemetry per query.
type segTransport struct {
	scanned, pruned, records int
}

func (s segTransport) Query(ctx context.Context, h types.HostID, q query.Query) (query.Result, QueryMeta, error) {
	return query.Result{Op: q.Op}, QueryMeta{RecordsScanned: s.records, SegmentsScanned: s.scanned, SegmentsPruned: s.pruned}, nil
}
func (s segTransport) Install(context.Context, types.HostID, query.Query, types.Time) (int, error) {
	return 0, errors.New("not used")
}
func (s segTransport) Uninstall(context.Context, types.HostID, int) error {
	return errors.New("not used")
}
