package controller

import (
	"context"
	"sync"
	"testing"
	"time"

	"pathdump/internal/alarms"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

func pipeAlarm(host int, port uint16, reason types.Reason) types.Alarm {
	return types.Alarm{
		Host:   types.HostID(host),
		Flow:   types.FlowID{SrcIP: 1, DstIP: 2, SrcPort: port, DstPort: 80, Proto: 6},
		Reason: reason,
	}
}

// TestAlarmStormBounded is the unbounded-growth regression: the old
// Controller.alarms slice grew one element per RaiseAlarm forever; the
// pipeline caps history at the configured depth no matter how hard the
// fleet storms.
func TestAlarmStormBounded(t *testing.T) {
	topo, _ := topology.FatTree(4)
	ctrl := New(topo, Local{}, nil)
	ctrl.SetAlarmPolicy(alarms.Config{History: 128})

	const storm = 100_000
	for i := 0; i < storm; i++ {
		ctrl.RaiseAlarm(pipeAlarm(i%50, uint16(i), types.ReasonPoorPerf))
	}
	if got := len(ctrl.Alarms()); got != 128 {
		t.Fatalf("alarm log holds %d entries after a %d-alarm storm, want 128", got, storm)
	}
	st := ctrl.AlarmStats()
	if st.Received != storm || st.Admitted != storm {
		t.Fatalf("stats = %+v", st)
	}
	// The survivors are the newest alarms.
	newest := ctrl.Alarms()
	last := storm - 1
	if newest[127].Flow.SrcPort != uint16(last) {
		t.Fatalf("newest surviving alarm is %v", newest[127])
	}
}

// TestRaiseAlarmDedupSkipsHandlers: a suppressed repeat neither grows
// history nor re-triggers OnAlarm handlers or subscribers.
func TestRaiseAlarmDedupSkipsHandlers(t *testing.T) {
	topo, _ := topology.FatTree(4)
	ctrl := New(topo, Local{}, nil)
	ctrl.SetAlarmPolicy(alarms.Config{Suppress: time.Minute})

	var mu sync.Mutex
	handled := 0
	ctrl.OnAlarm(func(types.Alarm) { mu.Lock(); handled++; mu.Unlock() })
	sub := ctrl.SubscribeAlarms(16)
	defer sub.Close()

	for i := 0; i < 10; i++ {
		ctrl.RaiseAlarm(pipeAlarm(3, 42, types.ReasonPoorPerf))
	}
	ctrl.RaiseAlarm(pipeAlarm(3, 43, types.ReasonPathConformance))

	mu.Lock()
	h := handled
	mu.Unlock()
	if h != 2 {
		t.Fatalf("handlers ran %d times, want 2 (one per admitted alarm)", h)
	}
	hist := ctrl.AlarmHistory(alarms.Filter{})
	if len(hist) != 2 {
		t.Fatalf("history = %d entries, want 2", len(hist))
	}
	if hist[0].Count != 10 {
		t.Fatalf("deduped entry folded %d firings, want 10", hist[0].Count)
	}
	// The subscriber saw exactly the two admitted entries.
	e1 := <-sub.C()
	e2 := <-sub.C()
	if e1.Alarm.Reason != types.ReasonPoorPerf || e2.Alarm.Reason != types.ReasonPathConformance {
		t.Fatalf("stream delivered %v then %v", e1.Alarm, e2.Alarm)
	}
	select {
	case e := <-sub.C():
		t.Fatalf("unexpected third delivery %v", e)
	default:
	}
	if st := ctrl.AlarmStats(); st.Suppressed != 9 {
		t.Fatalf("suppressed = %d, want 9", st.Suppressed)
	}
}

// TestAlarmsForFiltersHistory: reason filtering rides the pipeline.
func TestAlarmsForFiltersHistory(t *testing.T) {
	topo, _ := topology.FatTree(4)
	ctrl := New(topo, Local{}, nil)
	for i := 0; i < 6; i++ {
		r := types.ReasonPoorPerf
		if i%3 == 0 {
			r = types.ReasonInvalidTraj
		}
		ctrl.RaiseAlarm(pipeAlarm(1, uint16(i), r))
	}
	if got := len(ctrl.AlarmsFor(types.ReasonInvalidTraj)); got != 2 {
		t.Fatalf("AlarmsFor(INVALID_TRAJECTORY) = %d, want 2", got)
	}
	if got := len(ctrl.AlarmsFor(types.ReasonPoorPerf)); got != 4 {
		t.Fatalf("AlarmsFor(POOR_PERF) = %d, want 4", got)
	}
}

// TestRaiseAlarmCancelledContext: a cancelled alarm context publishes
// nothing.
func TestRaiseAlarmCancelledContext(t *testing.T) {
	topo, _ := topology.FatTree(4)
	ctrl := New(topo, Local{}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctrl.RaiseAlarmContext(ctx, pipeAlarm(1, 1, types.ReasonPoorPerf))
	if got := len(ctrl.Alarms()); got != 0 {
		t.Fatalf("cancelled context still published %d alarms", got)
	}
}
