package controller

import (
	"pathdump/internal/netsim"
	"pathdump/internal/types"
)

// LoopEvent describes a detected routing loop (§4.5).
type LoopEvent struct {
	Flow types.FlowID
	Seq  uint64
	// At is the switch whose ASIC punted the packet.
	At types.SwitchID
	// DetectedAt is when the controller concluded "loop".
	DetectedAt types.Time
	// Repeated is the sampled link that appeared twice.
	Repeated types.LinkID
	// Rounds is how many punts it took (1 for loops short enough that a
	// single header already repeats; 2+ when the controller had to strip
	// tags and reinject, §4.5 "detecting loops of any size").
	Rounds int
}

type loopKey struct {
	flow types.FlowID
	seq  uint64
	ack  bool
}

// OnLoop registers a routing-loop handler.
func (c *Controller) OnLoop(fn func(LoopEvent)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.loopFns = append(c.loopFns, fn)
}

// OnLongPath registers a handler for packets trapped with a suspiciously
// long path that did not (yet) reveal a loop.
func (c *Controller) OnLongPath(fn func(at types.SwitchID, pkt *netsim.Packet)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.longFns = append(c.longFns, fn)
}

// Trap implements netsim.TrapHandler. A packet arrives here when its VLAN
// stack exceeded what the switch ASIC can parse. The controller decodes
// the sampled link IDs (it has the topology and the srcIP) and checks for
// a repeated link — the signature of a loop. If none repeats, it stores
// the links, strips the tags, and sends the packet back to the switch; a
// looping packet returns with fresh tags whose links overlap the stored
// ones, revealing loops of any size (§4.5).
func (c *Controller) Trap(at types.SwitchID, pkt *netsim.Packet) {
	// The trap path runs under the controller's alarm context: a
	// shutting-down controller must neither dispatch new alarms nor
	// schedule reinjections it will never see complete.
	ctx := c.alarmContext()
	if ctx.Err() != nil {
		return
	}
	k := loopKey{flow: pkt.Flow, seq: pkt.Seq, ack: pkt.Ack}
	c.mu.Lock()
	prev, seen := c.loopState[k]
	c.mu.Unlock()

	cur := c.decodeLinks(pkt)
	if dup, ok := findRepeat(prev, cur); ok {
		rounds := 1
		if seen {
			rounds = 2
		}
		c.mu.Lock()
		delete(c.loopState, k)
		fns := append(make([]func(LoopEvent), 0, len(c.loopFns)), c.loopFns...)
		c.mu.Unlock()
		ev := LoopEvent{
			Flow: pkt.Flow, Seq: pkt.Seq, At: at,
			DetectedAt: c.now(), Repeated: dup, Rounds: rounds,
		}
		c.RaiseAlarmContext(ctx, types.Alarm{Flow: pkt.Flow, Reason: types.ReasonLoop, At: ev.DetectedAt})
		for _, fn := range fns {
			if ctx.Err() != nil {
				return
			}
			fn(ev)
		}
		return
	}

	// No repeat yet: remember what we saw, strip the tags, reinject
	// after the controller→switch leg of the slow path.
	c.mu.Lock()
	c.loopState[k] = append(append([]types.LinkID(nil), prev...), cur...)
	longFns := append(make([]func(types.SwitchID, *netsim.Packet), 0, len(c.longFns)), c.longFns...)
	c.mu.Unlock()
	c.RaiseAlarmContext(ctx, types.Alarm{Flow: pkt.Flow, Reason: types.ReasonLongPath, At: c.now(), Paths: nil})
	for _, fn := range longFns {
		if ctx.Err() != nil {
			return
		}
		fn(at, pkt)
	}
	if c.sim != nil && ctx.Err() == nil {
		pkt.Hdr.VLANs = nil
		c.sim.After(c.sim.Config().PuntDelay/2, func() { c.sim.Reinject(at, pkt) })
	}
}

// decodeLinks converts the trapped packet's VLAN tags into concrete
// sampled links; tags that fail to decode become synthetic one-sided
// links so raw-value comparison still works as a fallback.
func (c *Controller) decodeLinks(pkt *netsim.Packet) []types.LinkID {
	if c.sim != nil {
		links, err := c.sim.Scheme.SampledLinks(pkt.Flow.SrcIP, pkt.Flow.DstIP, pkt.Hdr)
		if err == nil || len(links) > 0 {
			return links
		}
	}
	out := make([]types.LinkID, len(pkt.Hdr.VLANs))
	for i, v := range pkt.Hdr.VLANs {
		out[i] = types.LinkID{A: types.WildcardSwitch, B: types.SwitchID(v)}
	}
	return out
}

func (c *Controller) now() types.Time {
	if c.sim != nil {
		return c.sim.Now()
	}
	return 0
}

// findRepeat looks for a link repeated within cur or shared between prev
// and cur.
func findRepeat(prev, cur []types.LinkID) (types.LinkID, bool) {
	seen := make(map[types.LinkID]bool, len(prev)+len(cur))
	for _, v := range prev {
		seen[v] = true
	}
	for _, v := range cur {
		if seen[v] {
			return v, true
		}
		seen[v] = true
	}
	return types.LinkID{}, false
}
