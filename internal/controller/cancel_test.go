package controller

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"pathdump/internal/query"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// awaitGoroutineBaseline asserts the goroutine count settles back to (or
// below) the pre-test baseline, retrying briefly: fan-out goroutines that
// observed the cancellation are allowed a moment to unwind, but nothing
// may stay parked forever (the leak a cancelled-but-unwaited fan-out
// would produce).
func awaitGoroutineBaseline(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after cancellation: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFanoutCancelPromptReturn is the cancellation acceptance test: a
// 64-host direct query over the slow transport at Parallelism 1 would
// take the full sequential sum (64 × 50 ms = 3.2 s). Cancelling shortly
// after it starts must return within roughly one per-host round trip —
// the in-flight request aborts its delay, pending hosts are skipped — and
// must not leak a single fan-out goroutine.
func TestFanoutCancelPromptReturn(t *testing.T) {
	const (
		hosts      = 64
		delay      = 50 * time.Millisecond
		cancelAt   = 75 * time.Millisecond
		promptness = 3 * delay // generous CI headroom; the sum is 64×delay
	)
	topo, _ := topology.FatTree(4)
	tr := &slowTransport{delay: delay}
	ctrl := New(topo, tr, nil)
	ctrl.Parallelism = 1

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(cancelAt)
		cancel()
	}()
	start := time.Now()
	_, stats, err := ctrl.ExecuteContext(ctx, hostRange(hosts), query.Query{Op: query.OpTopK, K: hosts})
	elapsed := time.Since(start)
	cancel()

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > cancelAt+promptness {
		t.Errorf("cancelled query took %v, want within ~%v of the %v cancel (sequential sum is %v)",
			elapsed, promptness, cancelAt, hosts*delay)
	}
	if stats.Skipped == 0 {
		t.Error("ExecStats.Skipped = 0, want the cut-off hosts reported")
	}
	if stats.Hosts+stats.Skipped != hosts {
		t.Errorf("answered %d + skipped %d != %d requested", stats.Hosts, stats.Skipped, hosts)
	}
	if got := tr.calls.Load(); got >= hosts/2 {
		t.Errorf("%d hosts queried after cancellation — fan-out did not stop", got)
	}
	awaitGoroutineBaseline(t, before)
}

// TestFanoutDeadlinePromptReturn: the same fixture driven by
// context.WithTimeout — the -timeout flag's code path — reports
// DeadlineExceeded and returns promptly.
func TestFanoutDeadlinePromptReturn(t *testing.T) {
	const (
		hosts = 64
		delay = 50 * time.Millisecond
	)
	topo, _ := topology.FatTree(4)
	tr := &slowTransport{delay: delay}
	ctrl := New(topo, tr, nil)
	ctrl.Parallelism = 2

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, stats, err := ctrl.ExecuteContext(ctx, hostRange(hosts), query.Query{Op: query.OpTopK, K: 5})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 80*time.Millisecond+3*delay {
		t.Errorf("deadline-bounded query took %v", elapsed)
	}
	if stats.Skipped == 0 || stats.Hosts+stats.Skipped != hosts {
		t.Errorf("stats = %+v, want skipped hosts accounted", stats)
	}
	awaitGoroutineBaseline(t, before)
}

// TestTreeCancelMidFanout: cancellation propagates through every level of
// an aggregation tree, not just the root's direct children.
func TestTreeCancelMidFanout(t *testing.T) {
	topo, _ := topology.FatTree(4)
	tr := &slowTransport{delay: 30 * time.Millisecond}
	ctrl := New(topo, tr, nil)
	ctrl.Parallelism = 2

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(45 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, stats, err := ctrl.ExecuteTreeContext(ctx, hostRange(96), query.Query{Op: query.OpTopK, K: 10}, []int{6, 4})
	elapsed := time.Since(start)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 300*time.Millisecond {
		t.Errorf("tree cancel took %v", elapsed)
	}
	if stats.Hosts+stats.Skipped != 96 {
		t.Errorf("answered %d + skipped %d != 96", stats.Hosts, stats.Skipped)
	}
	awaitGoroutineBaseline(t, before)
}

// TestPreCancelledContext: an already-cancelled context never touches the
// transport at all.
func TestPreCancelledContext(t *testing.T) {
	topo, _ := topology.FatTree(4)
	tr := &slowTransport{delay: time.Millisecond}
	ctrl := New(topo, tr, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, stats, err := ctrl.ExecuteContext(ctx, hostRange(16), query.Query{Op: query.OpTopK, K: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := tr.calls.Load(); got != 0 {
		t.Errorf("%d transport calls despite pre-cancelled context", got)
	}
	if stats.Skipped != 16 {
		t.Errorf("Skipped = %d, want all 16", stats.Skipped)
	}
	if _, err := ctrl.QueryHostContext(ctx, 1, query.Query{Op: query.OpFlows}); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryHostContext err = %v, want context.Canceled", err)
	}
}

// TestModelDeadlineCapsResponse: the §5.2 cost model honours a per-query
// deadline. A 64-host direct query at modelled parallelism 1 charges the
// full serial sum (64 × (RTT + ExecBase) at minimum); with a deadline of
// roughly one slow-host round trip the modelled response caps there — the
// controller returns whatever has arrived.
func TestModelDeadlineCapsResponse(t *testing.T) {
	topo, _ := topology.FatTree(4)
	hosts := hostRange(64)
	q := query.Query{Op: query.OpTopK, K: 100}

	uncapped := New(topo, cannedTransport{k: 100, records: 10_000}, nil)
	uncapped.Parallelism = 1
	_, full, err := uncapped.Execute(hosts, q)
	if err != nil {
		t.Fatal(err)
	}
	cost := DefaultCostModel()
	serialFloor := 64 * (cost.RTT + cost.ExecBase)
	if full.ResponseTime < serialFloor {
		t.Fatalf("uncapped serial response %v below floor %v", full.ResponseTime, serialFloor)
	}

	capped := New(topo, cannedTransport{k: 100, records: 10_000}, nil)
	capped.Parallelism = 1
	oneHost := cost.RTT + cost.ExecBase + 2*types.Millisecond // ~one slow-host round trip
	capped.Cost.Deadline = oneHost
	_, stats, err := capped.Execute(hosts, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResponseTime != oneHost {
		t.Errorf("deadline-capped response = %v, want exactly the deadline %v (uncapped %v)",
			stats.ResponseTime, oneHost, full.ResponseTime)
	}
	// A deadline the query beats anyway must not distort the model.
	capped.Cost.Deadline = full.ResponseTime * 2
	_, loose, err := capped.Execute(hosts, q)
	if err != nil {
		t.Fatal(err)
	}
	if loose.ResponseTime != full.ResponseTime {
		t.Errorf("loose deadline changed response: %v vs %v", loose.ResponseTime, full.ResponseTime)
	}
}

// rollbackTransport records installs and uninstalls so tests can verify
// the partial-failure rollback. Host `bad` always fails installation.
type rollbackTransport struct {
	slowTransport
	bad types.HostID

	mu        sync.Mutex
	next      int
	installed map[types.HostID]int
}

func (r *rollbackTransport) Install(ctx context.Context, h types.HostID, q query.Query, p types.Time) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if h == r.bad {
		return 0, errBoom
	}
	time.Sleep(200 * time.Microsecond)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.installed == nil {
		r.installed = make(map[types.HostID]int)
	}
	r.next++
	r.installed[h] = r.next
	return r.next, nil
}

func (r *rollbackTransport) Uninstall(ctx context.Context, h types.HostID, id int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	got, ok := r.installed[h]
	if !ok {
		return fmt.Errorf("uninstall of never-installed host %v", h)
	}
	if got != id {
		return fmt.Errorf("uninstall host %v id %d, installed id was %d", h, id, got)
	}
	delete(r.installed, h)
	return nil
}

func (r *rollbackTransport) remaining() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.installed)
}

// serialRollbackTransport is rollbackTransport behind SerialControl,
// covering the serial install path's rollback too.
type serialRollbackTransport struct{ rollbackTransport }

func (*serialRollbackTransport) SerialControl() {}

// TestInstallRollbackOnPartialFailure: a failed fleet install uninstalls
// everything that did get installed before returning the real error, and
// returns no ID map — callers must never see orphaned handles.
func TestInstallRollbackOnPartialFailure(t *testing.T) {
	topo, _ := topology.FatTree(4)
	hosts := hostRange(64)

	t.Run("concurrent", func(t *testing.T) {
		tr := &rollbackTransport{bad: 37}
		ctrl := New(topo, tr, nil)
		ctrl.Parallelism = 8
		ids, err := ctrl.Install(hosts, query.Query{Op: query.OpPoorTCP, Threshold: 3}, types.Second)
		if !errors.Is(err, errBoom) {
			t.Fatalf("err = %v, want errBoom", err)
		}
		if ids != nil {
			t.Errorf("failed install returned ids %v, want nil", ids)
		}
		if n := tr.remaining(); n != 0 {
			t.Errorf("%d hosts left with orphaned installed queries after rollback", n)
		}
	})

	t.Run("serial", func(t *testing.T) {
		tr := &serialRollbackTransport{rollbackTransport{bad: 5}}
		ctrl := New(topo, tr, nil)
		ids, err := ctrl.Install(hosts, query.Query{Op: query.OpPoorTCP, Threshold: 3}, types.Second)
		if !errors.Is(err, errBoom) {
			t.Fatalf("err = %v, want errBoom", err)
		}
		if ids != nil {
			t.Errorf("failed install returned ids %v, want nil", ids)
		}
		if n := tr.remaining(); n != 0 {
			t.Errorf("%d orphaned installs after serial rollback", n)
		}
	})

	t.Run("cancelled", func(t *testing.T) {
		// Cancellation mid-install must also roll back: the rollback runs
		// on a detached context even though the caller's is dead.
		tr := &rollbackTransport{bad: types.HostID(1 << 30)} // no failing host
		ctrl := New(topo, tr, nil)
		ctrl.Parallelism = 2
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		ids, err := ctrl.InstallContext(ctx, hosts, query.Query{Op: query.OpPoorTCP, Threshold: 3}, types.Second)
		cancel()
		if err == nil {
			// The whole fleet beat the cancel; nothing to roll back.
			if len(ids) != len(hosts) {
				t.Fatalf("successful install returned %d ids", len(ids))
			}
			return
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if ids != nil {
			t.Errorf("cancelled install returned ids %v, want nil", ids)
		}
		if n := tr.remaining(); n != 0 {
			t.Errorf("%d orphaned installs after cancelled install", n)
		}
	})
}
