// Package controller implements the PathDump controller (§3.3): it
// installs the (static, one-time) tagging rules conceptually owned by the
// fabric, executes debugging queries against distributed TIBs — directly
// or through a Dremel/iMR-style multi-level aggregation tree — receives
// alarms from agents' active monitors, and traps packets whose VLAN stack
// overflowed (suspiciously long paths and routing loops, §4.5).
package controller

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"pathdump/internal/agent"
	"pathdump/internal/netsim"
	"pathdump/internal/query"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// QueryMeta carries per-execution cost inputs from an agent (used by the
// response-time model, §5.2).
type QueryMeta struct {
	// RecordsScanned is how many TIB records the host touched.
	RecordsScanned int
}

// Transport moves queries between the controller and host agents. The
// in-process implementation backs simulations; the HTTP implementation in
// internal/rpc backs real deployments.
type Transport interface {
	Query(host types.HostID, q query.Query) (query.Result, QueryMeta, error)
	Install(host types.HostID, q query.Query, period types.Time) (int, error)
	Uninstall(host types.HostID, id int) error
}

// Local is the in-process Transport over a set of agents.
type Local struct {
	Agents map[types.HostID]*agent.Agent
}

// Query implements Transport.
func (l Local) Query(host types.HostID, q query.Query) (query.Result, QueryMeta, error) {
	a, ok := l.Agents[host]
	if !ok {
		return query.Result{}, QueryMeta{}, fmt.Errorf("controller: unknown host %v", host)
	}
	res := a.Execute(q)
	return res, QueryMeta{RecordsScanned: a.Store.Len() + a.Mem.Len()}, nil
}

// Install implements Transport.
func (l Local) Install(host types.HostID, q query.Query, period types.Time) (int, error) {
	a, ok := l.Agents[host]
	if !ok {
		return 0, fmt.Errorf("controller: unknown host %v", host)
	}
	return a.Install(q, period), nil
}

// Uninstall implements Transport.
func (l Local) Uninstall(host types.HostID, id int) error {
	a, ok := l.Agents[host]
	if !ok {
		return fmt.Errorf("controller: unknown host %v", host)
	}
	return a.Uninstall(id)
}

// CostModel parameterises the query response-time accounting used by the
// §5.2 experiments. It mirrors the paper's testbed: a management network
// separate from the data network, per-record query execution cost at
// hosts, and per-item aggregation cost wherever results are merged.
type CostModel struct {
	// RTT is the management-network round trip per request (default 1 ms).
	RTT types.Time
	// BandwidthBps is the management link rate (default 1 Gbps).
	BandwidthBps int64
	// ExecBase is the fixed per-query host cost (default 2 ms — process
	// wakeup plus TIB session setup).
	ExecBase types.Time
	// ExecPerRecord is the per-TIB-record scan cost (default 400 ns).
	ExecPerRecord types.Time
	// MergePerItem is the per-result-item aggregation cost at whichever
	// node merges (default 4 µs — the paper's controller-side key-value
	// processing dominates large direct queries, §5.2).
	MergePerItem types.Time
}

// DefaultCostModel returns the defaults above.
func DefaultCostModel() CostModel {
	return CostModel{
		RTT:           types.Millisecond,
		BandwidthBps:  1e9,
		ExecBase:      2 * types.Millisecond,
		ExecPerRecord: 400,
		MergePerItem:  4 * types.Microsecond,
	}
}

// ExecStats summarises one distributed query execution.
type ExecStats struct {
	Hosts int
	// ResponseTime is the modelled end-to-end latency.
	ResponseTime types.Time
	// WireBytes is the total bytes moved over the management network
	// (queries down plus results up, Figs. 11b/12b).
	WireBytes int64
}

// Controller is one PathDump controller instance.
type Controller struct {
	Topo *topology.Topology
	T    Transport
	Cost CostModel

	mu       sync.Mutex
	alarms   []types.Alarm
	handlers []func(types.Alarm)

	sim       *netsim.Sim
	loopState map[loopKey][]types.LinkID
	loopFns   []func(LoopEvent)
	longFns   []func(types.SwitchID, *netsim.Packet)
}

// New builds a controller over a transport. sim may be nil when no
// in-fabric trap handling is needed (e.g. pure HTTP deployments).
func New(topo *topology.Topology, t Transport, sim *netsim.Sim) *Controller {
	c := &Controller{
		Topo:      topo,
		T:         t,
		Cost:      DefaultCostModel(),
		sim:       sim,
		loopState: make(map[loopKey][]types.LinkID),
	}
	if sim != nil {
		sim.SetTrapHandler(c)
	}
	return c
}

// RaiseAlarm implements agent.AlarmSink: it logs the alarm and dispatches
// registered handlers (the event-driven debugging path of Figure 3).
func (c *Controller) RaiseAlarm(a types.Alarm) {
	c.mu.Lock()
	c.alarms = append(c.alarms, a)
	handlers := append(make([]func(types.Alarm), 0, len(c.handlers)), c.handlers...)
	c.mu.Unlock()
	for _, fn := range handlers {
		fn(a)
	}
}

// OnAlarm registers an alarm handler.
func (c *Controller) OnAlarm(fn func(types.Alarm)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handlers = append(c.handlers, fn)
}

// Alarms returns a copy of the alarm log.
func (c *Controller) Alarms() []types.Alarm {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]types.Alarm(nil), c.alarms...)
}

// AlarmsFor filters the log by reason.
func (c *Controller) AlarmsFor(r types.Reason) []types.Alarm {
	var out []types.Alarm
	for _, a := range c.Alarms() {
		if a.Reason == r {
			out = append(out, a)
		}
	}
	return out
}

// QueryHost executes one query at one host (the direct query primitive).
func (c *Controller) QueryHost(host types.HostID, q query.Query) (query.Result, error) {
	res, _, err := c.T.Query(host, q)
	return res, err
}

// Execute runs a query at every listed host as a direct query — each host
// contacted straight from the controller, results folded at the
// controller — and returns the merged result with modelled cost (§3.2).
func (c *Controller) Execute(hosts []types.HostID, q query.Query) (query.Result, ExecStats, error) {
	root := &treeNode{children: leafNodes(hosts)}
	return c.run(root, q)
}

// ExecuteTree runs a query through a multi-level aggregation tree with the
// given per-level fan-outs (e.g. [7,4,4] builds the paper's 4-level tree
// over 112 hosts). Hosts double as interior aggregation nodes.
func (c *Controller) ExecuteTree(hosts []types.HostID, q query.Query, fanouts []int) (query.Result, ExecStats, error) {
	if len(fanouts) == 0 {
		return c.Execute(hosts, q)
	}
	root := &treeNode{children: buildLevels(hosts, fanouts)}
	return c.run(root, q)
}

// Install installs a query at each listed host (§2.1 controller API).
// It returns per-host installation IDs for Uninstall.
func (c *Controller) Install(hosts []types.HostID, q query.Query, period types.Time) (map[types.HostID]int, error) {
	out := make(map[types.HostID]int, len(hosts))
	for _, h := range hosts {
		id, err := c.T.Install(h, q, period)
		if err != nil {
			return out, err
		}
		out[h] = id
	}
	return out, nil
}

// Uninstall removes previously installed queries.
func (c *Controller) Uninstall(ids map[types.HostID]int) error {
	var first error
	for h, id := range ids {
		if err := c.T.Uninstall(h, id); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// treeNode is one aggregation-tree position; the root has no host.
type treeNode struct {
	host     types.HostID
	isHost   bool
	children []*treeNode
}

func leafNodes(hosts []types.HostID) []*treeNode {
	out := make([]*treeNode, len(hosts))
	for i, h := range hosts {
		out[i] = &treeNode{host: h, isHost: true}
	}
	return out
}

// buildLevels partitions hosts into fanouts[0] contiguous groups; each
// group's first host becomes the aggregation node for the rest,
// recursively.
func buildLevels(hosts []types.HostID, fanouts []int) []*treeNode {
	if len(hosts) == 0 {
		return nil
	}
	if len(fanouts) == 0 {
		return leafNodes(hosts)
	}
	n := fanouts[0]
	if n <= 0 || n > len(hosts) {
		n = len(hosts)
	}
	out := make([]*treeNode, 0, n)
	for g := 0; g < n; g++ {
		lo := g * len(hosts) / n
		hi := (g + 1) * len(hosts) / n
		group := hosts[lo:hi]
		if len(group) == 0 {
			continue
		}
		node := &treeNode{host: group[0], isHost: true}
		node.children = buildLevels(group[1:], fanouts[1:])
		out = append(out, node)
	}
	return out
}

// run executes the query over the tree, merging bottom-up, and computes
// the modelled response time:
//
//	T(node) = max(execLocal, max over children(RTT + T(child) + xfer))
//	        + Σ children items·MergePerItem
//
// Children proceed in parallel; merging at a node is serial. Wire bytes
// count the query going down and each (partial) result coming up.
func (c *Controller) run(n *treeNode, q query.Query) (query.Result, ExecStats, error) {
	qBytes, err := json.Marshal(q)
	if err != nil {
		return query.Result{}, ExecStats{}, err
	}
	res, t, bytes, hosts, err := c.runNode(n, q, int64(len(qBytes)))
	if err != nil {
		return query.Result{}, ExecStats{}, err
	}
	return res, ExecStats{Hosts: hosts, ResponseTime: t, WireBytes: bytes}, nil
}

func (c *Controller) runNode(n *treeNode, q query.Query, qWire int64) (query.Result, types.Time, int64, int, error) {
	var (
		res    query.Result
		localT types.Time
		wire   int64
		hosts  int
	)
	res.Op = q.Op
	if n.isHost {
		r, meta, err := c.T.Query(n.host, q)
		if err != nil {
			return res, 0, 0, 0, err
		}
		res = r
		localT = c.Cost.ExecBase + types.Time(meta.RecordsScanned)*c.Cost.ExecPerRecord
		hosts = 1
	}
	childT := localT
	type part struct {
		res   query.Result
		avail types.Time
	}
	parts := make([]part, 0, len(n.children))
	for _, ch := range n.children {
		r, t, b, h, err := c.runNode(ch, q, qWire)
		if err != nil {
			return res, 0, 0, 0, err
		}
		size := int64(r.WireSize())
		xfer := types.Time((size + qWire) * 8 * int64(types.Second) / c.Cost.BandwidthBps)
		avail := c.Cost.RTT + t + xfer
		if avail > childT {
			childT = avail
		}
		wire += b + size + qWire
		hosts += h
		parts = append(parts, part{res: r, avail: avail})
	}
	// Merge serially in arrival order.
	sort.SliceStable(parts, func(i, j int) bool { return parts[i].avail < parts[j].avail })
	total := childT
	for i := range parts {
		res.Merge(&parts[i].res, q)
		total += types.Time(itemCount(&parts[i].res)) * c.Cost.MergePerItem
	}
	return res, total, wire, hosts, nil
}

// itemCount estimates the number of key-value items merged from a partial
// result (the unit of aggregation cost). Histograms count their occupied
// bins: zero bins are never materialised as key-value pairs.
func itemCount(r *query.Result) int {
	n := len(r.Flows) + len(r.Paths) + len(r.FlowIDs) + len(r.Top) +
		len(r.Violations) + len(r.Matrix) + len(r.Records)
	for _, h := range r.Hists {
		for _, b := range h.Bins {
			if b != 0 {
				n++
			}
		}
	}
	if n == 0 {
		n = 1 // scalar results still cost one update
	}
	return n
}
