// Package controller implements the PathDump controller (§3.3): it
// installs the (static, one-time) tagging rules conceptually owned by the
// fabric, executes debugging queries against distributed TIBs — directly
// or through a Dremel/iMR-style multi-level aggregation tree — receives
// alarms from agents' active monitors, and traps packets whose VLAN stack
// overflowed (suspiciously long paths and routing loops, §4.5).
//
// Every distributed operation is context-aware end to end: the public
// Execute/ExecuteTree/Install/Uninstall/QueryHost entry points have
// *Context variants, the Transport carries the context to the wire, and a
// cancelled or expired context aborts in-flight fan-out waves promptly —
// a slow or dead host can no longer pin down a whole query (§5.2's
// interactivity argument).
//
// Queries are additionally straggler-tolerant: HedgeAfter issues a
// duplicate request to a host that has not answered in time (first
// response wins, the loser is cancelled), PerHostTimeout drops a host
// that exhausts its own budget so the rest of the fleet's data still
// comes back (ExecStats.Partial), and PartialOnDeadline turns a
// whole-query deadline expiry into a merged partial result instead of an
// error. Interior aggregation nodes merge child results as they land
// (query.StreamMerger) rather than barriering on the slowest child.
package controller

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pathdump/internal/agent"
	"pathdump/internal/alarms"
	"pathdump/internal/netsim"
	"pathdump/internal/obs"
	"pathdump/internal/query"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// QueryMeta carries per-execution cost inputs from an agent (used by the
// response-time model, §5.2).
type QueryMeta struct {
	// RecordsScanned is how many TIB records the host touched.
	RecordsScanned int
	// SegmentsScanned/SegmentsPruned report the host store's segment
	// telemetry for this query: partitions walked versus skipped whole by
	// time-bound intersection. They feed ExecStats and the §5.2 cost
	// model's pruned-fraction term.
	SegmentsScanned int
	SegmentsPruned  int
	// Span is the agent-side scan span for this execution, when the
	// transport carried one back (HTTP daemons return it with the
	// response). The controller attaches it under the host's rpc span;
	// when nil it synthesizes a scan span from the counts above.
	Span *obs.Span
}

// Transport moves queries between the controller and host agents. The
// in-process implementation backs simulations; the HTTP implementation in
// internal/rpc backs real deployments. Every method takes the execution's
// context first and must return promptly once it is cancelled — the
// controller relies on that to abort fan-out waves.
type Transport interface {
	Query(ctx context.Context, host types.HostID, q query.Query) (query.Result, QueryMeta, error)
	Install(ctx context.Context, host types.HostID, q query.Query, period types.Time) (int, error)
	Uninstall(ctx context.Context, host types.HostID, id int) error
}

// BatchReply is one host's answer within a batched multi-host query.
type BatchReply struct {
	Host   types.HostID
	Result query.Result
	Meta   QueryMeta
	Err    error
}

// BatchTransport is an optional Transport extension: QueryMany executes
// one query at several hosts in a single round trip per daemon (the
// batched request path of internal/rpc). The controller routes the leaf
// fan-out of Execute/ExecuteTree through it when available. Replies must
// align with the hosts argument; parallel bounds the transport's internal
// concurrency (<= 0 means unlimited). Cancelling ctx must abort the
// round trip and any server-side fan-out it carries.
type BatchTransport interface {
	Transport
	QueryMany(ctx context.Context, hosts []types.HostID, q query.Query, parallel int) ([]BatchReply, error)
}

// SerialControl marks transports whose Install/Uninstall must not be
// invoked concurrently — the sim-backed Local transport schedules periodic
// queries on a single-threaded virtual-time event loop. Query fan-out is
// always concurrent; only control-plane installs are serialised.
type SerialControl interface{ SerialControl() }

// Local is the in-process Transport over a set of agents.
type Local struct {
	Agents map[types.HostID]*agent.Agent
}

// Query implements Transport. The context is honoured mid-scan: the
// agent's evaluation loop polls cancellation as it merges TIB shards.
// Segment telemetry is attributed by delta around the execution (queries
// racing on one agent may swap shares — the counts feed modelled stats,
// not correctness).
func (l Local) Query(ctx context.Context, host types.HostID, q query.Query) (query.Result, QueryMeta, error) {
	a, ok := l.Agents[host]
	if !ok {
		return query.Result{}, QueryMeta{}, fmt.Errorf("controller: unknown host %v", host)
	}
	sc0, sp0 := a.Store.SegmentStats()
	res, err := a.ExecuteContext(ctx, q)
	if err != nil {
		return query.Result{}, QueryMeta{}, err
	}
	sc1, sp1 := a.Store.SegmentStats()
	return res, QueryMeta{
		RecordsScanned:  a.Store.Len() + a.Mem.Len(),
		SegmentsScanned: int(sc1 - sc0),
		SegmentsPruned:  int(sp1 - sp0),
	}, nil
}

// Install implements Transport.
func (l Local) Install(ctx context.Context, host types.HostID, q query.Query, period types.Time) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	a, ok := l.Agents[host]
	if !ok {
		return 0, fmt.Errorf("controller: unknown host %v", host)
	}
	return a.Install(q, period), nil
}

// Uninstall implements Transport.
func (l Local) Uninstall(ctx context.Context, host types.HostID, id int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	a, ok := l.Agents[host]
	if !ok {
		return fmt.Errorf("controller: unknown host %v", host)
	}
	return a.Uninstall(id)
}

// SerialControl marks the in-process transport's installs as serial: they
// register timers on the shared single-threaded simulator.
func (l Local) SerialControl() {}

// CostModel parameterises the query response-time accounting used by the
// §5.2 experiments. It mirrors the paper's testbed: a management network
// separate from the data network, per-record query execution cost at
// hosts, and per-item aggregation cost wherever results are merged.
type CostModel struct {
	// RTT is the management-network round trip per request (default 1 ms).
	RTT types.Time
	// BandwidthBps is the management link rate (default 1 Gbps).
	BandwidthBps int64
	// ExecBase is the fixed per-query host cost (default 2 ms — process
	// wakeup plus TIB session setup).
	ExecBase types.Time
	// ExecPerRecord is the per-TIB-record scan cost (default 400 ns).
	ExecPerRecord types.Time
	// MergePerItem is the per-result-item aggregation cost at whichever
	// node merges (default 4 µs — the paper's controller-side key-value
	// processing dominates large direct queries, §5.2).
	MergePerItem types.Time
	// PerHostTimeout is the modelled per-host budget (0 = none): a child
	// whose modelled service time exceeds it is charged exactly the
	// budget, because the real controller stops waiting then and drops
	// the straggler (Controller.PerHostTimeout). Hosts that were actually
	// dropped occupy a modelled worker for the budget and contribute no
	// merge cost. When unset but the controller has a wall-clock
	// PerHostTimeout, that value is used (both are nanosecond-granular).
	// Hedging needs no model knob of its own: modelled service times are
	// deterministic, so a duplicate request started HedgeAfter later can
	// never beat the original — hedging only wins against real-world
	// latency variance, which the §5.2 model deliberately excludes.
	PerHostTimeout types.Time
	// Deadline is the modelled per-query response deadline (0 = none).
	// The controller returns whatever has arrived by the deadline, so the
	// modelled response time is capped at it: a deadline of roughly one
	// slow-host round trip keeps a 64-host direct query interactive even
	// when the model would otherwise charge the full serial wall-clock.
	Deadline types.Time
	// SegmentCheck is the per-segment bound-intersection cost of the
	// host's time-partitioned TIB (0 = free). When a host reports segment
	// telemetry, its modelled scan cost charges ExecPerRecord only for
	// the un-pruned fraction of its records plus one SegmentCheck per
	// segment considered — the §5.2 term that makes narrow time windows
	// over large TIBs model as cheap as they now run.
	SegmentCheck types.Time
}

// DefaultCostModel returns the defaults above (no deadline).
func DefaultCostModel() CostModel {
	return CostModel{
		RTT:           types.Millisecond,
		BandwidthBps:  1e9,
		ExecBase:      2 * types.Millisecond,
		ExecPerRecord: 400,
		MergePerItem:  4 * types.Microsecond,
	}
}

// ExecStats summarises one distributed query execution.
type ExecStats struct {
	// Hosts is how many hosts actually answered. On a fully successful
	// execution it equals the number of requested hosts.
	Hosts int
	// Skipped is how many of the requested hosts' answers are missing:
	// on a failed execution, hosts never (or not successfully) queried
	// before the abort; on a successful partial one, stragglers dropped
	// by PerHostTimeout or cut off by the expired query deadline.
	Skipped int
	// Partial is set on a successful execution whose merged result is
	// missing some requested hosts' data (Skipped > 0): stragglers were
	// dropped by the per-host budget, or the whole-query deadline expired
	// under PartialOnDeadline. A non-partial success has every host's
	// data; a failed execution returns no result at all.
	Partial bool
	// Hedged is how many duplicate (hedged) per-host requests were
	// actually issued because a primary outlived HedgeAfter.
	Hedged int
	// Retried is how many per-host (or batched-round) requests were
	// re-issued after a real transport error under the retry policy
	// (Controller.RetryAttempts) — distinct from Hedged, which duplicates
	// slow-but-healthy requests.
	Retried int
	// SegmentsScanned/SegmentsPruned total the hosts' TIB partition
	// telemetry: segments walked versus skipped whole by time-bound
	// intersection. A range-heavy query over segmented stores should show
	// Pruned ≫ Scanned.
	SegmentsScanned int
	SegmentsPruned  int
	// ResponseTime is the modelled end-to-end latency, capped at the cost
	// model's Deadline when one is set.
	ResponseTime types.Time
	// WireBytes is the total bytes moved over the management network
	// (queries down plus results up, Figs. 11b/12b).
	WireBytes int64
	// Trace is the finished span tree for this execution: the root
	// query span with per-host rpc spans (hedges, retries and drops
	// labelled), agent scan spans, and interior merge spans under it.
	// Always populated; render with Trace.Render (pathdumpctl -trace).
	Trace *obs.Span
}

// Controller is one PathDump controller instance.
type Controller struct {
	Topo *topology.Topology
	T    Transport
	Cost CostModel

	// Parallelism bounds the number of concurrently outstanding per-host
	// transport requests during Execute/ExecuteTree/Install/Uninstall
	// fan-out (<= 0 means unlimited). The response-time model mirrors the
	// bound: children of an aggregation node are dispatched onto
	// Parallelism modelled workers, so max-over-parallel-children latency
	// degrades gracefully toward sum-latency as the bound tightens.
	Parallelism int

	// PerHostTimeout bounds how long any single host's query — including
	// a hedged duplicate — may take before the host is dropped from the
	// execution and the result is marked partial (0 = wait indefinitely,
	// subject to the whole-query context). Wall-clock; captured once per
	// execution. Setting it is the opt-in: a query with a per-host budget
	// prefers partial data over waiting on a dead host.
	PerHostTimeout time.Duration

	// HedgeAfter issues a duplicate request to a host whose primary has
	// not answered after this long (0 = never hedge). The duplicate stays
	// inside the global Parallelism bound: it races the primary on a free
	// slot when one exists, and otherwise cancels the primary and retries
	// on the slot the host already holds (so hedging cannot starve when
	// stalled primaries hold the whole pool). The first response wins and
	// the loser's context is cancelled. One hedge per host per execution.
	// Hedging is per-host by nature, so when it is enabled leaf fan-out
	// skips the batched transport path.
	HedgeAfter time.Duration

	// PartialOnDeadline makes ExecuteContext/ExecuteTreeContext return
	// whatever has been merged when the whole-query deadline expires —
	// ExecStats.Partial set, error nil — instead of failing with
	// DeadlineExceeded. Explicit cancellation (the caller is gone) and
	// real host failures still error.
	PartialOnDeadline bool

	// RetryAttempts re-issues a failed per-host request (or batched
	// round) up to this many extra times on real transport errors —
	// connection refused, reset, EOF — with jittered exponential backoff.
	// It is distinct from hedging: a hedge duplicates a request that is
	// merely slow, a retry replaces one the transport already failed.
	// Context expiry, fan-out aborts and authoritative server answers
	// (HTTP status errors) are never retried, and when hedging is active
	// the hedge race owns the slow/failed path instead. 0 disables.
	RetryAttempts int

	// RetryBackoff is the base delay before the first retry (default
	// 50 ms when RetryAttempts > 0); each further attempt doubles it,
	// jittered to [d/2, d). The retrying host keeps its Parallelism slot
	// while it backs off — the bound is on outstanding work, and a host
	// mid-retry is still work in progress.
	RetryBackoff time.Duration

	// SlowQueryThreshold feeds executions whose wall-clock exceeds it
	// into the bounded slow-query log (SlowQueries) with their full
	// span tree. 0 disables the log. Set at wiring time.
	SlowQueryThreshold time.Duration

	om   *controllerMetrics
	slow *obs.SlowLog

	mu       sync.Mutex
	pipe     *alarms.Pipeline
	handlers []func(types.Alarm)
	alarmCtx context.Context // base context for alarm dispatch (nil = Background)

	sim       *netsim.Sim
	loopState map[loopKey][]types.LinkID
	loopFns   []func(LoopEvent)
	longFns   []func(types.SwitchID, *netsim.Packet)
}

// New builds a controller over a transport. sim may be nil when no
// in-fabric trap handling is needed (e.g. pure HTTP deployments).
func New(topo *topology.Topology, t Transport, sim *netsim.Sim) *Controller {
	c := &Controller{
		Topo:      topo,
		T:         t,
		Cost:      DefaultCostModel(),
		pipe:      alarms.New(alarms.Config{}),
		sim:       sim,
		slow:      obs.NewSlowLog(0),
		loopState: make(map[loopKey][]types.LinkID),
	}
	if sim != nil {
		sim.SetTrapHandler(c)
	}
	return c
}

// VirtualNow returns the simulator's virtual clock, or 0 when the
// controller runs without an attached fabric (pure HTTP deployments).
// Scenario detectors use it to timestamp the alarms they raise.
func (c *Controller) VirtualNow() types.Time {
	if c.sim == nil {
		return 0
	}
	return c.sim.Now()
}

// RaiseAlarm implements agent.AlarmSink: it routes the alarm through the
// pipeline (bounded history, dedup/suppression, rate limiting, live
// subscribers) and dispatches registered handlers for alarms admitted as
// new entries (the event-driven debugging path of Figure 3). It runs
// under the controller's alarm context (SetAlarmContext).
func (c *Controller) RaiseAlarm(a types.Alarm) {
	c.RaiseAlarmContext(c.alarmContext(), a)
}

// RaiseAlarmContext is RaiseAlarm under a caller context — the HTTP
// /alarm handler passes its request context, so an agent that hung up
// does not have its alarm dispatched to nobody, and a shutting-down
// controller (alarm context cancelled) stops dispatching between
// handlers instead of running the full chain. A repeat folded into an
// existing history entry by the suppression window (or an alarm refused
// by the rate limit) updates the pipeline's counters but does not
// re-trigger handlers or subscribers.
func (c *Controller) RaiseAlarmContext(ctx context.Context, a types.Alarm) {
	if ctx.Err() != nil {
		return
	}
	c.mu.Lock()
	pipe := c.pipe
	c.mu.Unlock()
	if _, admitted := pipe.Publish(a); !admitted {
		return
	}
	// Snapshot the handler chain only for admitted alarms: the suppressed
	// storm path must stay allocation-free.
	c.mu.Lock()
	handlers := append(make([]func(types.Alarm), 0, len(c.handlers)), c.handlers...)
	c.mu.Unlock()
	for _, fn := range handlers {
		if ctx.Err() != nil {
			return
		}
		fn(a)
	}
}

// SetAlarmPolicy replaces the alarm pipeline's configuration — history
// depth, suppression window, rate limit. Call it at wiring time, before
// alarms flow: the previous pipeline's history and subscriptions are
// discarded with it.
func (c *Controller) SetAlarmPolicy(cfg alarms.Config) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pipe = alarms.New(cfg)
}

// AlarmPipeline returns the live pipeline (history queries, stats,
// subscriptions) — the surface the controller HTTP server exposes as
// GET /alarms and /alarms/stream.
func (c *Controller) AlarmPipeline() *alarms.Pipeline {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pipe
}

// SubscribeAlarms opens a live alarm feed: every alarm admitted from now
// on (after dedup and rate limiting) is delivered in admission order.
// buf bounds the feed's buffer (<= 0 selects the default); a subscriber
// that falls behind loses the newest entries (counted, never blocking
// the alarm path). Close the subscription when done.
func (c *Controller) SubscribeAlarms(buf int) *alarms.Subscription {
	return c.AlarmPipeline().Subscribe(buf)
}

// AlarmHistory queries the bounded alarm history.
func (c *Controller) AlarmHistory(f alarms.Filter) []alarms.Entry {
	return c.AlarmPipeline().History(f)
}

// AlarmStats reports the pipeline's traffic counters.
func (c *Controller) AlarmStats() alarms.Stats {
	return c.AlarmPipeline().Stats()
}

// SetAlarmContext installs the base context under which the alarm path —
// RaiseAlarm, trap handling, loop dispatch — runs. A daemon passes its
// lifetime context so a shutdown stops alarm work promptly; nil restores
// context.Background.
func (c *Controller) SetAlarmContext(ctx context.Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.alarmCtx = ctx
}

func (c *Controller) alarmContext() context.Context {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.alarmCtx != nil {
		return c.alarmCtx
	}
	return context.Background()
}

// OnAlarm registers an alarm handler.
func (c *Controller) OnAlarm(fn func(types.Alarm)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handlers = append(c.handlers, fn)
}

// Alarms returns the alarms currently in the bounded history, oldest
// first. Unlike the pre-pipeline log this cannot grow without bound: an
// alarm storm keeps only the newest History entries, and suppressed
// repeats fold into one entry (use AlarmHistory for fold counts).
func (c *Controller) Alarms() []types.Alarm {
	hist := c.AlarmPipeline().History(alarms.Filter{})
	out := make([]types.Alarm, len(hist))
	for i := range hist {
		out[i] = hist[i].Alarm
	}
	return out
}

// AlarmsFor filters the history by reason.
func (c *Controller) AlarmsFor(r types.Reason) []types.Alarm {
	hist := c.AlarmPipeline().History(alarms.Filter{Reason: r})
	out := make([]types.Alarm, 0, len(hist))
	for i := range hist {
		out = append(out, hist[i].Alarm)
	}
	return out
}

// QueryHost executes one query at one host (the direct query primitive).
func (c *Controller) QueryHost(host types.HostID, q query.Query) (query.Result, error) {
	return c.QueryHostContext(context.Background(), host, q)
}

// QueryHostContext is QueryHost with a caller-supplied context; a
// cancelled or expired context aborts the request.
func (c *Controller) QueryHostContext(ctx context.Context, host types.HostID, q query.Query) (query.Result, error) {
	res, _, err := c.T.Query(ctx, host, q)
	return res, err
}

// Execute runs a query at every listed host as a direct query — each host
// contacted straight from the controller, results folded at the
// controller — and returns the merged result with modelled cost (§3.2).
func (c *Controller) Execute(hosts []types.HostID, q query.Query) (query.Result, ExecStats, error) {
	return c.ExecuteContext(context.Background(), hosts, q)
}

// ExecuteContext is Execute with a caller-supplied context. Cancellation
// (or an expired deadline) aborts the in-flight fan-out wave promptly:
// pending host requests are skipped, in-flight ones are cut off at the
// transport, and the returned ExecStats reports how many hosts were
// skipped. The error is the context's.
func (c *Controller) ExecuteContext(ctx context.Context, hosts []types.HostID, q query.Query) (query.Result, ExecStats, error) {
	root := &treeNode{children: leafNodes(hosts)}
	return c.run(ctx, root, q)
}

// ExecuteTree runs a query through a multi-level aggregation tree with the
// given per-level fan-outs (e.g. [7,4,4] builds the paper's 4-level tree
// over 112 hosts). Hosts double as interior aggregation nodes.
func (c *Controller) ExecuteTree(hosts []types.HostID, q query.Query, fanouts []int) (query.Result, ExecStats, error) {
	return c.ExecuteTreeContext(context.Background(), hosts, q, fanouts)
}

// ExecuteTreeContext is ExecuteTree with a caller-supplied context (see
// ExecuteContext for cancellation semantics).
func (c *Controller) ExecuteTreeContext(ctx context.Context, hosts []types.HostID, q query.Query, fanouts []int) (query.Result, ExecStats, error) {
	if len(fanouts) == 0 {
		return c.ExecuteContext(ctx, hosts, q)
	}
	root := &treeNode{children: buildLevels(hosts, fanouts)}
	return c.run(ctx, root, q)
}

// Install installs a query at each listed host (§2.1 controller API).
// It returns per-host installation IDs for Uninstall. Installation fans
// out concurrently (bounded by Parallelism) unless the transport declares
// SerialControl. Install is atomic at the fleet level: on the first
// failure every already-installed ID is rolled back (best effort) before
// the error is returned, so no host is left running a query the caller
// never got a handle to.
func (c *Controller) Install(hosts []types.HostID, q query.Query, period types.Time) (map[types.HostID]int, error) {
	return c.InstallContext(context.Background(), hosts, q, period)
}

// InstallContext is Install with a caller-supplied context. The rollback
// of a partial installation runs even when ctx is already cancelled (it
// detaches via context.WithoutCancel): cancellation must not orphan
// installed queries.
func (c *Controller) InstallContext(ctx context.Context, hosts []types.HostID, q query.Query, period types.Time) (map[types.HostID]int, error) {
	out := make(map[types.HostID]int, len(hosts))
	var err error
	if _, serial := c.T.(SerialControl); serial || len(hosts) < 2 {
		for _, h := range hosts {
			if err = ctx.Err(); err != nil {
				break
			}
			var id int
			if id, err = c.T.Install(ctx, h, q, period); err != nil {
				break
			}
			out[h] = id
		}
	} else {
		var mu sync.Mutex
		err = c.forEachHost(ctx, hosts, true, func(ctx context.Context, h types.HostID) error {
			id, err := c.T.Install(ctx, h, q, period)
			if err != nil {
				return err
			}
			mu.Lock()
			out[h] = id
			mu.Unlock()
			return nil
		})
	}
	if err != nil {
		if len(out) > 0 {
			// Best-effort rollback so the partial fleet is not left
			// running an orphaned query; ignore rollback failures — the
			// install error is the one the caller must see.
			_ = c.UninstallContext(context.WithoutCancel(ctx), out)
		}
		return nil, err
	}
	return out, nil
}

// Uninstall removes previously installed queries. Every host is attempted
// (best effort, concurrently unless the transport declares SerialControl);
// the first failure in deterministic host order is returned.
func (c *Controller) Uninstall(ids map[types.HostID]int) error {
	return c.UninstallContext(context.Background(), ids)
}

// UninstallContext is Uninstall with a caller-supplied context.
func (c *Controller) UninstallContext(ctx context.Context, ids map[types.HostID]int) error {
	hosts := make([]types.HostID, 0, len(ids))
	for h := range ids {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	if _, serial := c.T.(SerialControl); serial || len(hosts) < 2 {
		var first error
		for _, h := range hosts {
			if err := ctx.Err(); err != nil {
				if first == nil {
					first = err
				}
				break
			}
			if err := c.T.Uninstall(ctx, h, ids[h]); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return c.forEachHost(ctx, hosts, false, func(ctx context.Context, h types.HostID) error {
		return c.T.Uninstall(ctx, h, ids[h])
	})
}

// forEachHost runs fn once per host concurrently under a fresh bounded
// fan-out pool carrying ctx. With abortOnErr the first failure latches and
// pending hosts are skipped (Install); without it every host is attempted
// (Uninstall's best effort) unless ctx is cancelled. The reported error is
// deterministic in host order regardless of goroutine timing.
func (c *Controller) forEachHost(ctx context.Context, hosts []types.HostID, abortOnErr bool, fn func(ctx context.Context, h types.HostID) error) error {
	fo := newFanout(ctx, c.Parallelism)
	errs := make([]error, len(hosts))
	var wg sync.WaitGroup
	for i, h := range hosts {
		wg.Add(1)
		go func(i int, h types.HostID) {
			defer wg.Done()
			if err := fo.acquire(); err != nil {
				errs[i] = err
				return
			}
			defer fo.release()
			errs[i] = fn(fo.ctx, h)
			if errs[i] != nil && abortOnErr {
				fo.abort()
			}
		}(i, h)
	}
	wg.Wait()
	return firstError(errs)
}

// treeNode is one aggregation-tree position; the root has no host.
type treeNode struct {
	host     types.HostID
	isHost   bool
	children []*treeNode
}

func leafNodes(hosts []types.HostID) []*treeNode {
	out := make([]*treeNode, len(hosts))
	for i, h := range hosts {
		out[i] = &treeNode{host: h, isHost: true}
	}
	return out
}

// buildLevels partitions hosts into fanouts[0] contiguous groups; each
// group's first host becomes the aggregation node for the rest,
// recursively.
func buildLevels(hosts []types.HostID, fanouts []int) []*treeNode {
	if len(hosts) == 0 {
		return nil
	}
	if len(fanouts) == 0 {
		return leafNodes(hosts)
	}
	n := fanouts[0]
	if n <= 0 || n > len(hosts) {
		n = len(hosts)
	}
	out := make([]*treeNode, 0, n)
	for g := 0; g < n; g++ {
		lo := g * len(hosts) / n
		hi := (g + 1) * len(hosts) / n
		group := hosts[lo:hi]
		if len(group) == 0 {
			continue
		}
		node := &treeNode{host: group[0], isHost: true}
		node.children = buildLevels(group[1:], fanouts[1:])
		out = append(out, node)
	}
	return out
}

// countHosts returns the number of host positions in the tree (leaf and
// interior aggregation hosts alike) — the denominator for Skipped.
func countHosts(n *treeNode) int {
	total := 0
	if n.isHost {
		total++
	}
	for _, ch := range n.children {
		total += countHosts(ch)
	}
	return total
}

// newQueryFanout builds the fan-out pool for one query execution,
// capturing the straggler policy alongside the parallelism bound.
// Control-plane fan-outs (Install/Uninstall) use plain newFanout: hedging
// would double-install and partial installs are rolled back, not kept.
func (c *Controller) newQueryFanout(ctx context.Context) *fanout {
	fo := newFanout(ctx, c.Parallelism)
	fo.perHostTimeout = c.PerHostTimeout
	fo.hedgeAfter = c.HedgeAfter
	fo.partial = c.PartialOnDeadline
	fo.retryAttempts = c.RetryAttempts
	fo.retryBackoff = c.RetryBackoff
	fo.inflight = c.metrics().inflight
	return fo
}

// dropHost decides whether a per-host failure drops the host from the
// execution (straggler tolerance) rather than failing it. Two cases drop:
// the host's own PerHostTimeout budget expired while the query as a whole
// was still live, and the whole-query deadline expired with partial mode
// on. Explicit cancellation and real transport errors never drop.
func (c *Controller) dropHost(fo *fanout, err error) bool {
	if !errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	qerr := fo.ctx.Err()
	if qerr == nil {
		// The query is still live, so the deadline that fired was the
		// host's own budget.
		return fo.perHostTimeout > 0
	}
	return fo.partial && errors.Is(qerr, context.DeadlineExceeded)
}

// modelHostExec is the modelled execution time at one host. Without
// segment telemetry it is the classic §5.2 linear scan charge. With it,
// only the un-pruned fraction of the host's records is charged at
// ExecPerRecord, plus one SegmentCheck per partition considered — the
// cost-model mirror of whole-segment time pruning.
func (c *Controller) modelHostExec(meta QueryMeta) types.Time {
	t := c.Cost.ExecBase
	records := types.Time(meta.RecordsScanned)
	if total := meta.SegmentsScanned + meta.SegmentsPruned; total > 0 {
		records = records * types.Time(meta.SegmentsScanned) / types.Time(total)
		t += types.Time(total) * c.Cost.SegmentCheck
	}
	return t + records*c.Cost.ExecPerRecord
}

// modelPerHostCap is the modelled time charged for a host the controller
// stopped waiting on: the cost model's own PerHostTimeout when set,
// otherwise the wall-clock budget mapped onto modelled nanoseconds (both
// are nanosecond-granular), otherwise zero.
func (c *Controller) modelPerHostCap() types.Time {
	if c.Cost.PerHostTimeout > 0 {
		return c.Cost.PerHostTimeout
	}
	if c.PerHostTimeout > 0 {
		return types.Time(c.PerHostTimeout.Nanoseconds())
	}
	return 0
}

// run executes the query over the tree, merging bottom-up, and computes
// the modelled response time. At each node children are dispatched onto
// goroutines (at most Parallelism transport requests outstanding across
// the whole tree) and merged as they land: child i folds in the moment
// children 0..i-1 have folded and i has arrived, so merge work overlaps
// waiting on stragglers while the output stays identical to an
// index-order merge. The model mirrors both halves:
//
//	avail(child) = start + RTT + T(child) + xfer   (greedy schedule over
//	                                                Parallelism workers)
//	mergeEnd(i)  = max(mergeEnd(i-1), avail(i)) + items(i)·MergePerItem
//	T(node)      = max(execLocal, max avail, mergeEnd(last))
//
// Wire bytes count the query going down and each (partial) result coming
// up. On failure — including ctx cancellation — the stats still report
// how many hosts had answered versus how many were skipped, so callers
// can tell a near-complete cancelled query from one cut off at the start.
// A successful execution that is missing dropped stragglers' data sets
// Partial instead.
func (c *Controller) run(ctx context.Context, n *treeNode, q query.Query) (query.Result, ExecStats, error) {
	qBytes, err := json.Marshal(q)
	if err != nil {
		return query.Result{}, ExecStats{}, err
	}
	// Every execution is traced: the ID rides to agents in the
	// transport headers, the span tree comes back on ExecStats. An
	// execution arriving with a trace ID (forwarded from an upstream
	// controller) keeps it.
	trace := obs.TraceFromContext(ctx)
	if trace == "" {
		trace = obs.NewTraceID()
		ctx = obs.ContextWithTrace(ctx, trace)
	}
	total := countHosts(n)
	root := obs.NewSpan("query")
	root.SetAttr("trace", trace)
	root.SetAttr("op", string(q.Op))
	root.SetInt("hosts", int64(total))
	m := c.metrics()
	m.queries.Inc()
	m.fanoutHosts.Observe(float64(total))
	started := time.Now()
	defer func() {
		root.Finish()
		m.queryDur.ObserveDuration(root.Dur)
		if th := c.SlowQueryThreshold; th > 0 && root.Dur >= th {
			c.slow.Add(obs.SlowQuery{
				Trace: trace,
				Query: string(qBytes),
				Dur:   root.Dur,
				At:    started,
				Span:  root,
			})
		}
	}()
	fo := c.newQueryFanout(ctx)
	out := c.runNode(n, q, int64(len(qBytes)), fo, root)
	stats := ExecStats{Hedged: int(fo.hedged.Load()), Retried: int(fo.retried.Load()), Trace: root}
	m.hedged.Add(uint64(stats.Hedged))
	m.retried.Add(uint64(stats.Retried))
	if out.err != nil {
		stats.Hosts = int(fo.queried.Load())
		stats.Skipped = total - stats.Hosts
		root.SetAttr("error", out.err.Error())
		return query.Result{}, stats, out.err
	}
	t := out.t
	if d := c.Cost.Deadline; d > 0 && t > d {
		// The modelled controller hands back whatever has arrived once the
		// per-query deadline fires; stragglers past it are simply not
		// waited for, so the modelled response time caps at the deadline.
		t = d
	}
	stats.Hosts = out.hosts
	stats.Skipped = total - out.hosts
	stats.Partial = stats.Skipped > 0
	stats.ResponseTime = t
	stats.WireBytes = out.wire
	stats.SegmentsScanned = out.segScanned
	stats.SegmentsPruned = out.segPruned
	m.hostsQueried.Add(uint64(stats.Hosts))
	if stats.Partial {
		m.partial.Inc()
	}
	return out.res, stats, nil
}

// childOut is one child subtree's outcome, slotted by child index so the
// merge remains deterministic regardless of goroutine completion order.
// err==nil with hosts==0 marks a dropped straggler (or a subtree whose
// every host was dropped): it contributes nothing to the merge.
// segScanned/segPruned total the subtree's TIB partition telemetry.
type childOut struct {
	res                   query.Result
	t                     types.Time
	wire                  int64
	hosts                 int
	segScanned, segPruned int
	err                   error
}

func (c *Controller) runNode(n *treeNode, q query.Query, qWire int64, fo *fanout, sp *obs.Span) childOut {
	nc := len(n.children)
	outs := make([]childOut, nc)
	done := make(chan int, nc)

	// Leaf children can ride one batched transport round; subtrees (and
	// leaves on plain transports) recurse on their own goroutines. With
	// hedging on, leaves stay per-host: a hedge duplicates one host's
	// request, not a whole daemon's round.
	var batchIdx []int
	if bt, ok := c.T.(BatchTransport); ok && fo.hedgeAfter <= 0 {
		for i, ch := range n.children {
			if ch.isHost && len(ch.children) == 0 {
				batchIdx = append(batchIdx, i)
			}
		}
		if len(batchIdx) >= 2 {
			go c.runBatch(bt, n, q, batchIdx, outs, fo, done, sp)
		} else {
			batchIdx = nil
		}
	}
	inBatch := make([]bool, nc)
	for _, i := range batchIdx {
		inBatch[i] = true
	}
	for i, ch := range n.children {
		if inBatch[i] {
			continue
		}
		go func(i int, ch *treeNode) {
			csp := sp
			if len(ch.children) > 0 {
				// Interior aggregation nodes get their own span so the
				// tree shape survives into the trace; leaves hang their
				// rpc span directly off the parent.
				csp = sp.StartChild("node")
				csp.SetAttr("host", fmt.Sprintf("%v", ch.host))
				defer csp.Finish()
			}
			outs[i] = c.runNode(ch, q, qWire, fo, csp)
			done <- i
		}(i, ch)
	}

	// The node's own host executes on this goroutine, concurrently with
	// its children (an aggregation host scans its TIB while waiting); its
	// result is the merge base.
	var out childOut
	out.res.Op = q.Op
	var (
		localT   types.Time
		localErr error
	)
	if n.isHost {
		r, meta, err := c.queryHost(n.host, q, fo, sp)
		switch {
		case err == nil:
			out.res = r
			out.res.Op = q.Op
			localT = c.modelHostExec(meta)
			out.hosts = 1
			out.segScanned += meta.SegmentsScanned
			out.segPruned += meta.SegmentsPruned
		case c.dropHost(fo, err):
			// Straggler dropped: the node aggregates without its own data,
			// having waited (in the model's view) the per-host budget.
			localT = c.modelPerHostCap()
		default:
			fo.abort()
			localErr = err
		}
	}

	// Streaming interior merge: drain the completion channel and fold
	// each child in the moment the index prefix allows, so merging
	// overlaps waiting on the remaining children.
	var msp *obs.Span
	if nc > 0 {
		msp = sp.StartChild("merge")
		msp.SetInt("children", int64(nc))
	}
	sm := query.NewStreamMerger(q, &out.res, nc)
	errs := make([]error, 1, nc+1)
	errs[0] = localErr
	for drained := 0; drained < nc; drained++ {
		i := <-done
		o := &outs[i]
		if o.err != nil {
			errs = append(errs, o.err)
			sm.Add(i, nil)
			continue
		}
		if o.hosts == 0 {
			// Dropped straggler(s): nothing arrived to merge.
			sm.Add(i, nil)
			continue
		}
		sm.Add(i, &o.res)
	}
	if q.Op == query.OpRecords {
		// Each child's record slice was copied into the merged result;
		// recycle the pooled buffers the transports drew them from.
		for i := range outs {
			query.PutRecordBuf(outs[i].res.Records)
			outs[i].res.Records = nil
		}
	}
	msp.Finish()
	if err := firstError(errs); err != nil {
		return childOut{res: out.res, err: err}
	}

	// Modelled schedule: children are dispatched in index order onto
	// Parallelism workers (nil slice = unlimited, start always 0). The
	// bound was captured at execution start so model and semaphore agree.
	// The merge frontier mirrors the streaming merge above: child i's
	// merge starts once it has arrived and children before it merged.
	var workers []types.Time
	if fo.parallelism > 0 {
		workers = make([]types.Time, fo.parallelism)
	}
	perHostCap := c.modelPerHostCap()
	childT := localT
	mergeEnd := localT
	for i := range outs {
		o := &outs[i]
		size := int64(o.res.WireSize())
		xfer := types.Time((size + qWire) * 8 * int64(types.Second) / c.Cost.BandwidthBps)
		service := c.Cost.RTT + o.t + xfer
		leaf := n.children[i].isHost && len(n.children[i].children) == 0
		if leaf && perHostCap > 0 && service > perHostCap {
			// The budget bounds individual host requests, not whole
			// subtrees: a leaf's modelled service caps at it because the
			// real controller stops waiting then — the host either
			// answered within the budget or was dropped at it.
			service = perHostCap
		}
		var start types.Time
		if workers != nil {
			wi := 0
			for j := range workers {
				if workers[j] < workers[wi] {
					wi = j
				}
			}
			start = workers[wi]
			workers[wi] = start + service
		}
		avail := start + service
		if avail > childT {
			childT = avail
		}
		out.wire += o.wire + size + qWire
		out.hosts += o.hosts
		out.segScanned += o.segScanned
		out.segPruned += o.segPruned
		if o.hosts > 0 {
			if avail > mergeEnd {
				mergeEnd = avail
			}
			mergeEnd += types.Time(itemCount(&o.res)) * c.Cost.MergePerItem
		}
	}
	out.t = mergeEnd
	if childT > out.t {
		out.t = childT
	}
	return out
}

// runBatch resolves the leaf children listed in batchIdx through one
// BatchTransport round, filling their childOut slots and reporting each
// on the done channel. The batch draws real slots from the shared fan-out
// pool: one blocking acquire guarantees progress, then it widens greedily
// up to the batch size, and the transport's internal concurrency is
// capped at the slots actually held — so batched and per-host requests
// together never exceed the global Parallelism bound. A PerHostTimeout
// budgets the whole round: the round trip is the per-host unit here, and
// a round that exhausts it drops every host it carried.
func (c *Controller) runBatch(bt BatchTransport, n *treeNode, q query.Query, batchIdx []int, outs []childOut, fo *fanout, done chan<- int, sp *obs.Span) {
	bsp := sp.StartChild("batch")
	bsp.SetInt("hosts", int64(len(batchIdx)))
	defer bsp.Finish()
	defer func() {
		for _, i := range batchIdx {
			done <- i
		}
	}()
	hosts := make([]types.HostID, len(batchIdx))
	for j, i := range batchIdx {
		hosts[j] = n.children[i].host
	}
	if err := fo.acquire(); err != nil {
		for _, i := range batchIdx {
			c.finishBatchSlot(&outs[i], err, fo)
		}
		return
	}
	held := 1
	for held < len(hosts) && fo.tryAcquire() {
		held++
	}
	defer func() {
		for i := 0; i < held; i++ {
			fo.release()
		}
	}()
	parallel := held
	if fo.sem == nil {
		parallel = 0 // unlimited pool: let the transport fan out freely
	}
	batchCtx := fo.ctx
	if fo.perHostTimeout > 0 {
		var cancel context.CancelFunc
		batchCtx, cancel = context.WithTimeout(fo.ctx, fo.perHostTimeout)
		defer cancel()
	}
	replies, err := bt.QueryMany(batchCtx, hosts, q, parallel)
	// A whole-round transport failure is retried like a per-host one: the
	// round trip is this path's request unit.
	retries := 0
	for attempt := 0; attempt < fo.retryAttempts && retryableTransportError(err); attempt++ {
		if !sleepCtx(batchCtx, fo.retryDelay(attempt)) || fo.err() != nil {
			break
		}
		fo.retried.Add(1)
		retries++
		replies, err = bt.QueryMany(batchCtx, hosts, q, parallel)
	}
	if retries > 0 {
		bsp.SetInt("retried", int64(retries))
	}
	if err == nil && len(replies) != len(hosts) {
		err = fmt.Errorf("controller: batch query returned %d replies for %d hosts", len(replies), len(hosts))
	}
	if err != nil {
		for _, i := range batchIdx {
			c.finishBatchSlot(&outs[i], err, fo)
		}
		return
	}
	for j, i := range batchIdx {
		rep := replies[j]
		if rep.Err != nil {
			c.finishBatchSlot(&outs[i], rep.Err, fo)
			continue
		}
		fo.queried.Add(1)
		hsp := bsp.StartChild("rpc")
		hsp.SetAttr("host", fmt.Sprintf("%v", rep.Host))
		attachScan(hsp, rep.Meta)
		hsp.Finish()
		outs[i] = childOut{
			res:        rep.Result,
			t:          c.modelHostExec(rep.Meta),
			hosts:      1,
			segScanned: rep.Meta.SegmentsScanned,
			segPruned:  rep.Meta.SegmentsPruned,
		}
	}
}

// finishBatchSlot classifies one batched host's failure: a dropped
// straggler keeps its zero childOut (no result, no error), anything else
// records the error and aborts the fan-out.
func (c *Controller) finishBatchSlot(o *childOut, err error, fo *fanout) {
	if c.dropHost(fo, err) {
		*o = childOut{t: c.modelPerHostCap()}
		return
	}
	fo.abort()
	o.err = err
}

// queryHost issues one host's query through the bounded fan-out pool
// under the execution's context, applying the per-host budget and — when
// hedging is on — racing a duplicate request against a slow primary.
// Errors are classified by the caller (dropHost): failing versus dropping
// a host is a policy decision made where the result slot lives.
func (c *Controller) queryHost(host types.HostID, q query.Query, fo *fanout, sp *obs.Span) (query.Result, QueryMeta, error) {
	if err := fo.acquire(); err != nil {
		return query.Result{}, QueryMeta{}, err
	}
	defer fo.release()
	rpc := sp.StartChild("rpc")
	rpc.SetAttr("host", fmt.Sprintf("%v", host))
	defer rpc.Finish()

	hostCtx := fo.ctx
	if fo.perHostTimeout > 0 {
		var cancel context.CancelFunc
		hostCtx, cancel = context.WithTimeout(fo.ctx, fo.perHostTimeout)
		defer cancel()
	}
	if fo.hedgeAfter <= 0 {
		r, meta, err := c.T.Query(hostCtx, host, q)
		// Bounded retry on real transport errors (never on context expiry,
		// aborts, or authoritative HTTP answers). The host keeps its pool
		// slot across the backoff: it is still outstanding work.
		retries := 0
		for attempt := 0; attempt < fo.retryAttempts && retryableTransportError(err); attempt++ {
			if !sleepCtx(hostCtx, fo.retryDelay(attempt)) || fo.err() != nil {
				break
			}
			fo.retried.Add(1)
			retries++
			r, meta, err = c.T.Query(hostCtx, host, q)
		}
		if retries > 0 {
			rpc.SetInt("retried", int64(retries))
		}
		if err == nil {
			fo.queried.Add(1)
			attachScan(rpc, meta)
		} else if c.dropHost(fo, err) {
			rpc.SetAttr("dropped", "true")
		}
		return r, meta, err
	}
	r, meta, err := c.queryHedged(hostCtx, host, q, fo, rpc)
	if err == nil {
		attachScan(rpc, meta)
	} else if c.dropHost(fo, err) {
		rpc.SetAttr("dropped", "true")
	}
	return r, meta, err
}

// hostReply is one attempt's answer inside a hedged host query.
type hostReply struct {
	res  query.Result
	meta QueryMeta
	err  error
}

// queryHedged races a primary request against a duplicate issued after
// fo.hedgeAfter of silence. The first success wins and the other
// attempt's context is cancelled; a primary that fails before the hedge
// fires returns its error immediately (hedging masks slowness, not
// failure); if both attempts fail, the most useful error is reported.
//
// The duplicate stays inside the global Parallelism bound. When a free
// slot exists at hedge time it takes one and genuinely races the
// primary. When the pool is exhausted — typically by stalled primaries
// exactly like this one — waiting for a second slot could starve
// forever (this host's own slot is held for the whole race), so the
// hedge falls back from racing to retrying: the primary is cancelled
// and the duplicate reissues on the slot this host already holds, once
// the primary has vacated it. Either way at most one transport request
// per held slot is in flight.
func (c *Controller) queryHedged(hostCtx context.Context, host types.HostID, q query.Query, fo *fanout, rpc *obs.Span) (query.Result, QueryMeta, error) {
	ctx, cancel := context.WithCancel(hostCtx)
	defer cancel() // cut off the losing (or still-pending) attempt
	primCtx, primCancel := context.WithCancel(ctx)
	defer primCancel()

	replies := make(chan hostReply, 2) // every launched attempt delivers
	go func() {
		r, m, err := c.T.Query(primCtx, host, q)
		replies <- hostReply{res: r, meta: m, err: err}
	}()

	// launchHedge issues the duplicate; with ownSlot it holds (and must
	// release) a freshly acquired pool slot, otherwise it reuses the slot
	// queryHost already holds for this host.
	launchHedge := func(ownSlot bool) {
		go func() {
			if ownSlot {
				defer fo.release()
			}
			if ctx.Err() != nil {
				replies <- hostReply{err: ctx.Err()}
				return
			}
			fo.hedged.Add(1)
			hsp := rpc.StartChild("hedge")
			hsp.SetAttr("host", fmt.Sprintf("%v", host))
			if !ownSlot {
				// The pool was exhausted: the duplicate replaced the
				// cancelled primary on its slot instead of racing it.
				hsp.SetAttr("slot", "reused")
			}
			r, m, err := c.T.Query(ctx, host, q)
			hsp.Finish()
			replies <- hostReply{res: r, meta: m, err: err}
		}()
	}

	timer := time.NewTimer(fo.hedgeAfter)
	defer timer.Stop()

	inFlight := 1
	retryOnPrimaryReturn := false
	var errs []error
	for {
		select {
		case rep := <-replies:
			inFlight--
			if rep.err == nil {
				fo.queried.Add(1)
				return rep.res, rep.meta, nil
			}
			if retryOnPrimaryReturn {
				// The cancelled primary has vacated this host's slot; the
				// duplicate takes its place. Our own cancellation echo is
				// not a reportable failure, but a real primary error is.
				retryOnPrimaryReturn = false
				if !errors.Is(rep.err, context.Canceled) {
					errs = append(errs, rep.err)
				}
				inFlight++
				launchHedge(false)
				continue
			}
			errs = append(errs, rep.err)
			if inFlight == 0 {
				return query.Result{}, QueryMeta{}, firstError(errs)
			}
		case <-timer.C:
			if fo.sem == nil || fo.tryAcquire() {
				inFlight++
				launchHedge(fo.sem != nil)
				continue
			}
			primCancel()
			retryOnPrimaryReturn = true
		}
	}
}

// itemCount estimates the number of key-value items merged from a partial
// result (the unit of aggregation cost). Histograms count their occupied
// bins: zero bins are never materialised as key-value pairs.
func itemCount(r *query.Result) int {
	n := len(r.Flows) + len(r.Paths) + len(r.FlowIDs) + len(r.Top) +
		len(r.Violations) + len(r.Matrix) + len(r.Records)
	for _, h := range r.Hists {
		for _, b := range h.Bins {
			if b != 0 {
				n++
			}
		}
	}
	if n == 0 {
		n = 1 // scalar results still cost one update
	}
	return n
}
