package controller

import (
	"strings"
	"testing"
	"time"

	"pathdump/internal/netsim"
	"pathdump/internal/obs"
	"pathdump/internal/query"
)

// TestExecutionTrace: every execution returns a span tree rooted at
// "query" with per-host rpc spans, synthesized scan spans (the Local
// transport carries no agent span) and an interior merge span.
func TestExecutionTrace(t *testing.T) {
	r := newRig(t, 4, netsim.Config{})
	r.seedTraffic(40)
	hosts := r.hosts[:4]
	_, stats, err := r.ctrl.Execute(hosts, query.Query{Op: query.OpTopK, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	root := stats.Trace
	if root == nil {
		t.Fatal("ExecStats.Trace is nil; every execution must be traced")
	}
	if root.Name != "query" || root.Attr("op") != "topk" {
		t.Fatalf("root span = %s op=%s, want query/topk", root.Name, root.Attr("op"))
	}
	if tr := root.Attr("trace"); len(tr) != 16 {
		t.Fatalf("root trace attr %q: want a 16-hex trace ID", tr)
	}
	out := root.Render()
	for _, want := range []string{"query trace=", "op=topk hosts=4", "rpc host=", "scan records=", "merge children=4"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace render missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "rpc host="); got != 4 {
		t.Errorf("rpc spans = %d, want 4:\n%s", got, out)
	}
}

// TestTreeExecutionTrace: interior aggregation nodes appear as "node"
// spans so the tree shape survives into the trace.
func TestTreeExecutionTrace(t *testing.T) {
	r := newRig(t, 4, netsim.Config{})
	r.seedTraffic(40)
	_, stats, err := r.ctrl.ExecuteTree(r.hosts[:8], query.Query{Op: query.OpTopK, K: 3}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	out := stats.Trace.Render()
	if got := strings.Count(out, "node host="); got != 2 {
		t.Fatalf("interior node spans = %d, want 2:\n%s", got, out)
	}
	if !strings.Contains(out, "merge children=") {
		t.Fatalf("interior merges missing:\n%s", out)
	}
}

// TestControllerMetricsAndSlowLog: RegisterMetrics exposes the
// controller plane on a scrape, and a threshold of one nanosecond
// lands every execution in the slow-query log with its span tree.
func TestControllerMetricsAndSlowLog(t *testing.T) {
	r := newRig(t, 4, netsim.Config{})
	r.seedTraffic(40)
	reg := obs.NewRegistry()
	r.ctrl.RegisterMetrics(reg)
	r.ctrl.SlowQueryThreshold = time.Nanosecond
	hosts := r.hosts[:4]
	if _, _, err := r.ctrl.Execute(hosts, query.Query{Op: query.OpTopK, K: 3}); err != nil {
		t.Fatal(err)
	}
	scrape := reg.Expose()
	for _, want := range []string{
		"pathdump_controller_queries_total 1",
		"pathdump_controller_hosts_queried_total 4",
		"pathdump_controller_query_seconds_count 1",
		"pathdump_controller_inflight_requests 0",
		"pathdump_controller_slow_queries 1",
		"pathdump_alarms_received",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q:\n%s", want, scrape)
		}
	}
	slow := r.ctrl.SlowQueries()
	if len(slow) != 1 {
		t.Fatalf("slow log entries = %d, want 1", len(slow))
	}
	e := slow[0]
	if e.Span == nil || e.Trace == "" || e.Dur <= 0 || !strings.Contains(e.Query, "topk") {
		t.Fatalf("slow entry incomplete: %+v", e)
	}
	if e.Trace != e.Span.Attr("trace") {
		t.Fatalf("slow entry trace %q does not match span attr %q", e.Trace, e.Span.Attr("trace"))
	}
}
