package controller

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pathdump/internal/obs"
)

// errAborted is the sentinel returned by fan-out slots acquired after an
// earlier request already failed: the distributed execution is being torn
// down and the remaining hosts are skipped (errgroup-style first-error
// semantics).
var errAborted = errors.New("controller: fan-out aborted after earlier error")

// fanout tracks one distributed execution: a bounded slot pool over
// outstanding transport requests plus a first-failure latch and the
// execution's context. The pool is acquired only for the duration of a
// transport call — never while waiting on children — so recursive tree
// fan-out cannot deadlock and the bound applies to total outstanding
// requests across all tree levels. Cancelling the context latches the
// abort too: pending acquires fail fast with the context's error, and
// in-flight transport calls observe it through the ctx they were handed.
type fanout struct {
	// parallelism is the bound captured once at execution start, so the
	// semaphore, the batch-slot accounting and the modelled worker
	// schedule all see one consistent value even if the controller's
	// knob is retuned mid-flight.
	parallelism int
	ctx         context.Context
	sem         chan struct{} // nil means unlimited
	quit        chan struct{}
	once        sync.Once

	// Straggler policy, captured once at execution start (see
	// Controller.PerHostTimeout/HedgeAfter/PartialOnDeadline). Control-
	// plane fan-outs (Install/Uninstall) leave all three zero: a hedged
	// install could double-install, and a partial install is a rollback,
	// not a result.
	perHostTimeout time.Duration
	hedgeAfter     time.Duration
	partial        bool
	retryAttempts  int
	retryBackoff   time.Duration

	// queried counts hosts whose query completed successfully, so a
	// cancelled execution can report how many of the requested hosts were
	// skipped (ExecStats.Skipped).
	queried atomic.Int64
	// hedged counts duplicate requests actually issued (ExecStats.Hedged).
	hedged atomic.Int64
	// retried counts re-issued requests after real transport errors
	// (ExecStats.Retried).
	retried atomic.Int64

	// inflight mirrors the pool occupancy onto the controller's
	// fan-out-depth gauge; nil (uninstrumented) no-ops.
	inflight *obs.Gauge
}

func newFanout(ctx context.Context, parallelism int) *fanout {
	fo := &fanout{parallelism: parallelism, ctx: ctx, quit: make(chan struct{})}
	if parallelism > 0 {
		fo.sem = make(chan struct{}, parallelism)
	}
	return fo
}

// abort latches the first failure; pending acquires fail fast.
func (fo *fanout) abort() { fo.once.Do(func() { close(fo.quit) }) }

// err reports whether the fan-out has been cancelled or aborted. A
// cancelled context wins: it is the caller's own deadline or cancel, and
// more useful to report than the abort echo.
func (fo *fanout) err() error {
	if err := fo.ctx.Err(); err != nil {
		return err
	}
	select {
	case <-fo.quit:
		return errAborted
	default:
		return nil
	}
}

// acquire blocks until a request slot frees up, the context is cancelled,
// or the fan-out aborts.
func (fo *fanout) acquire() error {
	if err := fo.err(); err != nil {
		return err
	}
	if fo.sem == nil {
		fo.inflight.Add(1)
		return nil
	}
	select {
	case fo.sem <- struct{}{}:
		fo.inflight.Add(1)
		return nil
	case <-fo.ctx.Done():
		return fo.ctx.Err()
	case <-fo.quit:
		return errAborted
	}
}

func (fo *fanout) release() {
	fo.inflight.Add(-1)
	if fo.sem != nil {
		<-fo.sem
	}
}

// tryAcquire grabs a slot only if one is free right now. Batched rounds
// use it to widen beyond their one guaranteed slot without risking the
// deadlock of several batches blocking on partially acquired slot sets.
func (fo *fanout) tryAcquire() bool {
	if fo.sem == nil || fo.err() != nil {
		return false
	}
	select {
	case fo.sem <- struct{}{}:
		fo.inflight.Add(1)
		return true
	default:
		return false
	}
}

// retryableTransportError classifies a per-host failure for the retry
// policy: only real transport errors — the dial failed, the connection
// reset, the stream cut off — are worth re-asking, so the check is a
// whitelist of network-level failures (net.Error somewhere in the chain,
// or an EOF mid-stream). Everything else is permanent for this
// execution: context expiry is the caller's decision, an abort echoes
// someone else's failure, an HTTP status error means the server answered
// authoritatively (a 501 will be a 501 the second time too), and
// configuration errors (unknown host, no URL) or response-decode
// failures cannot heal by re-asking.
func retryableTransportError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, errAborted) {
		return false
	}
	var status interface{ HTTPStatus() int }
	if errors.As(err, &status) {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// retryDelay is the jittered exponential backoff before retry attempt n
// (0-based): base·2ⁿ jittered down to [d/2, d), so synchronised failures
// across a fan-out do not re-converge on the failed host in lockstep.
func (fo *fanout) retryDelay(attempt int) time.Duration {
	d := fo.retryBackoff
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	for i := 0; i < attempt && d < 10*time.Second; i++ {
		d *= 2
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// sleepCtx waits d or until ctx is done, reporting whether the full wait
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// firstError returns the most useful failure from an index-ordered error
// slice: the first real error if any (abort errors are just echoes of an
// earlier failure elsewhere in the fan-out, and cancellation errors are
// echoes of the caller's own ctx), otherwise the first cancellation,
// otherwise the first abort. Index order makes the reported error
// deterministic no matter which goroutine lost the race.
func firstError(errs []error) error {
	var aborted, cancelled error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, errAborted):
			if aborted == nil {
				aborted = err
			}
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if cancelled == nil {
				cancelled = err
			}
		default:
			return err
		}
	}
	if cancelled != nil {
		return cancelled
	}
	return aborted
}
