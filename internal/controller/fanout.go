package controller

import (
	"errors"
	"sync"
)

// errAborted is the sentinel returned by fan-out slots acquired after an
// earlier request already failed: the distributed execution is being torn
// down and the remaining hosts are skipped (errgroup-style first-error
// semantics).
var errAborted = errors.New("controller: fan-out aborted after earlier error")

// fanout tracks one distributed execution: a bounded slot pool over
// outstanding transport requests plus a first-failure latch. The pool is
// acquired only for the duration of a transport call — never while
// waiting on children — so recursive tree fan-out cannot deadlock and the
// bound applies to total outstanding requests across all tree levels.
type fanout struct {
	// parallelism is the bound captured once at execution start, so the
	// semaphore, the batch-slot accounting and the modelled worker
	// schedule all see one consistent value even if the controller's
	// knob is retuned mid-flight.
	parallelism int
	sem         chan struct{} // nil means unlimited
	quit        chan struct{}
	once        sync.Once
}

func newFanout(parallelism int) *fanout {
	fo := &fanout{parallelism: parallelism, quit: make(chan struct{})}
	if parallelism > 0 {
		fo.sem = make(chan struct{}, parallelism)
	}
	return fo
}

// abort latches the first failure; pending acquires fail fast.
func (fo *fanout) abort() { fo.once.Do(func() { close(fo.quit) }) }

// err reports whether the fan-out has been aborted.
func (fo *fanout) err() error {
	select {
	case <-fo.quit:
		return errAborted
	default:
		return nil
	}
}

// acquire blocks until a request slot frees up or the fan-out aborts.
func (fo *fanout) acquire() error {
	if err := fo.err(); err != nil {
		return err
	}
	if fo.sem == nil {
		return nil
	}
	select {
	case fo.sem <- struct{}{}:
		return nil
	case <-fo.quit:
		return errAborted
	}
}

func (fo *fanout) release() {
	if fo.sem != nil {
		<-fo.sem
	}
}

// tryAcquire grabs a slot only if one is free right now. Batched rounds
// use it to widen beyond their one guaranteed slot without risking the
// deadlock of several batches blocking on partially acquired slot sets.
func (fo *fanout) tryAcquire() bool {
	if fo.sem == nil || fo.err() != nil {
		return false
	}
	select {
	case fo.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// firstError returns the most useful failure from an index-ordered error
// slice: the first real error if any (abort errors are just echoes of an
// earlier failure elsewhere in the fan-out), otherwise the first abort.
// Index order makes the reported error deterministic no matter which
// goroutine lost the race.
func firstError(errs []error) error {
	var aborted error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, errAborted) {
			return err
		}
		if aborted == nil {
			aborted = err
		}
	}
	return aborted
}
