package controller

import (
	"context"
	"encoding/json"
	"testing"

	"pathdump/internal/agent"
	"pathdump/internal/cherrypick"
	"pathdump/internal/netsim"
	"pathdump/internal/query"
	"pathdump/internal/tcp"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// rig wires a fat-tree with agents, stacks and a controller.
type rig struct {
	sim    *netsim.Sim
	ctrl   *Controller
	agents map[types.HostID]*agent.Agent
	stacks map[types.HostID]*tcp.Stack
	hosts  []types.HostID
}

func newRig(t *testing.T, k int, cfg netsim.Config) *rig {
	t.Helper()
	topo, err := topology.FatTree(k)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := cherrypick.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(topo, scheme, cfg)
	r := &rig{
		sim:    sim,
		agents: make(map[types.HostID]*agent.Agent),
		stacks: make(map[types.HostID]*tcp.Stack),
	}
	local := Local{Agents: r.agents}
	r.ctrl = New(topo, local, sim)
	for _, h := range topo.Hosts() {
		st := tcp.NewStack(sim, h.ID, tcp.Config{})
		r.stacks[h.ID] = st
		r.agents[h.ID] = agent.New(sim, h, st, r.ctrl, agent.Config{})
		r.hosts = append(r.hosts, h.ID)
	}
	return r
}

// seedTraffic runs a deterministic mesh of small flows and drains the sim.
func (r *rig) seedTraffic(n int) {
	topoHosts := r.sim.Topo.Hosts()
	for i := 0; i < n; i++ {
		src := topoHosts[i%len(topoHosts)]
		dst := topoHosts[(i*7+3)%len(topoHosts)]
		if src.ID == dst.ID {
			continue
		}
		f := types.FlowID{SrcIP: src.IP, DstIP: dst.IP, SrcPort: uint16(5000 + i), DstPort: 80, Proto: types.ProtoTCP}
		r.stacks[src.ID].StartFlow(f, int64(1000*(1+i%40)), 0, nil)
	}
	r.sim.RunAll()
}

func TestDirectAndTreeQueriesAgree(t *testing.T) {
	r := newRig(t, 4, netsim.Config{Seed: 1})
	r.seedTraffic(64)

	q := query.Query{Op: query.OpTopK, K: 10}
	direct, dstats, err := r.ctrl.Execute(r.hosts, q)
	if err != nil {
		t.Fatal(err)
	}
	tree, tstats, err := r.ctrl.ExecuteTree(r.hosts, q, []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	db, _ := json.Marshal(direct.Top)
	tb, _ := json.Marshal(tree.Top)
	if string(db) != string(tb) {
		t.Errorf("direct and tree top-k differ:\n%s\n%s", db, tb)
	}
	if len(direct.Top) == 0 {
		t.Fatal("no flows found")
	}
	if dstats.Hosts != len(r.hosts) || tstats.Hosts != len(r.hosts) {
		t.Errorf("host counts: direct=%d tree=%d", dstats.Hosts, tstats.Hosts)
	}
	if dstats.ResponseTime <= 0 || tstats.ResponseTime <= 0 {
		t.Error("non-positive response times")
	}
	if dstats.WireBytes <= 0 || tstats.WireBytes <= 0 {
		t.Error("non-positive wire bytes")
	}
}

// cannedTransport returns a fixed-size top-k result per host with a
// paper-scale TIB (240 K records), isolating the response-time model.
type cannedTransport struct {
	k       int
	records int
}

func (c cannedTransport) Query(ctx context.Context, host types.HostID, q query.Query) (query.Result, QueryMeta, error) {
	res := query.Result{Op: q.Op}
	for i := 0; i < c.k; i++ {
		res.Top = append(res.Top, query.FlowBytes{
			Flow:  types.FlowID{SrcIP: types.IP(uint32(host)<<16 | uint32(i)), DstIP: 1, SrcPort: uint16(i), DstPort: 80, Proto: 6},
			Bytes: uint64(1000 + i),
		})
	}
	return res, QueryMeta{RecordsScanned: c.records}, nil
}

func (c cannedTransport) Install(context.Context, types.HostID, query.Query, types.Time) (int, error) {
	return 0, nil
}
func (c cannedTransport) Uninstall(context.Context, types.HostID, int) error { return nil }

func TestDirectResponseGrowsWithHostsTreeStaysFlat(t *testing.T) {
	// The §5.2 shape at reduced paper scale (240 K records/host, k=2000):
	// direct-query response time grows linearly with host count because
	// the controller merges every host's k items serially; the 4-level
	// aggregation tree distributes that work and stays nearly flat.
	topo, _ := topology.FatTree(4)
	ctrl := New(topo, cannedTransport{k: 2000, records: 240_000}, nil)
	hosts := make([]types.HostID, 112)
	for i := range hosts {
		hosts[i] = types.HostID(i)
	}
	q := query.Query{Op: query.OpTopK, K: 2000}

	_, d28, err := ctrl.Execute(hosts[:28], q)
	if err != nil {
		t.Fatal(err)
	}
	_, d112, err := ctrl.Execute(hosts, q)
	if err != nil {
		t.Fatal(err)
	}
	_, t28, _ := ctrl.ExecuteTree(hosts[:28], q, []int{7, 4, 4})
	_, t112, _ := ctrl.ExecuteTree(hosts, q, []int{7, 4, 4})

	if d112.ResponseTime <= d28.ResponseTime {
		t.Errorf("direct response did not grow: %v vs %v", d28.ResponseTime, d112.ResponseTime)
	}
	if d112.ResponseTime <= t112.ResponseTime {
		t.Errorf("tree should beat direct at 112 hosts: direct=%v tree=%v",
			d112.ResponseTime, t112.ResponseTime)
	}
	growDirect := float64(d112.ResponseTime) / float64(d28.ResponseTime)
	growTree := float64(t112.ResponseTime) / float64(t28.ResponseTime)
	if growTree >= growDirect {
		t.Errorf("tree grew faster than direct: %.2f vs %.2f", growTree, growDirect)
	}
	// Traffic volumes are comparable (the paper's Fig. 12b): the tree
	// moves at most ~2× the direct bytes.
	if t112.WireBytes > 2*d112.WireBytes {
		t.Errorf("tree traffic %d far exceeds direct %d", t112.WireBytes, d112.WireBytes)
	}
}

func TestQueryHostAndErrors(t *testing.T) {
	r := newRig(t, 4, netsim.Config{Seed: 3})
	r.seedTraffic(16)
	res, err := r.ctrl.QueryHost(r.hosts[3], query.Query{Op: query.OpFlows, Link: types.AnyLink})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if _, err := r.ctrl.QueryHost(types.HostID(9999), query.Query{Op: query.OpFlows}); err == nil {
		t.Error("unknown host accepted")
	}
	if _, _, err := r.ctrl.Execute([]types.HostID{9999}, query.Query{Op: query.OpFlows}); err == nil {
		t.Error("Execute with unknown host accepted")
	}
}

func TestInstallUninstallViaController(t *testing.T) {
	r := newRig(t, 4, netsim.Config{Seed: 4})
	ids, err := r.ctrl.Install(r.hosts[:3], query.Query{Op: query.OpPoorTCP, Threshold: 2}, 200*types.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	for h, id := range ids {
		if len(r.agents[h].InstalledQueries()) != 1 {
			t.Errorf("host %v has no installed query", h)
		}
		_ = id
	}
	if err := r.ctrl.Uninstall(ids); err != nil {
		t.Fatal(err)
	}
	for h := range ids {
		if len(r.agents[h].InstalledQueries()) != 0 {
			t.Errorf("host %v still has installed queries", h)
		}
	}
	if _, err := r.ctrl.Install([]types.HostID{9999}, query.Query{Op: query.OpPoorTCP}, 0); err == nil {
		t.Error("install at unknown host accepted")
	}
}

func TestAlarmLogAndHandlers(t *testing.T) {
	r := newRig(t, 4, netsim.Config{})
	var handled []types.Alarm
	r.ctrl.OnAlarm(func(a types.Alarm) { handled = append(handled, a) })
	r.ctrl.RaiseAlarm(types.Alarm{Reason: types.ReasonPoorPerf, Host: 1})
	r.ctrl.RaiseAlarm(types.Alarm{Reason: types.ReasonLoop, Host: 2})
	if len(r.ctrl.Alarms()) != 2 || len(handled) != 2 {
		t.Fatal("alarm log or handler missed events")
	}
	if got := r.ctrl.AlarmsFor(types.ReasonLoop); len(got) != 1 || got[0].Host != 2 {
		t.Errorf("AlarmsFor = %v", got)
	}
}

// buildLoop misconfigures the fabric so flow f loops between two pods via
// one core, and returns the loop path description.
func buildLoop(r *rig, f types.FlowID) {
	// Probe the flow's canonical path first.
	topoHosts := r.sim.Topo
	src := topoHosts.HostByIP(f.SrcIP)
	r.sim.Send(src.ID, &netsim.Packet{Flow: f, Size: 64})
	r.sim.RunAll()
	a := r.agents[topoHosts.HostByIP(f.DstIP).ID]
	paths := a.Store.Paths(f, types.AnyLink, types.AllTime)
	if len(paths) == 0 {
		// Record may still be in trajectory memory; flush via queries.
		res := a.Execute(query.Query{Op: query.OpPaths, Flow: f, Link: types.AnyLink})
		paths = res.Paths
	}
	probe := paths[0]
	core, aggD := probe[2], probe[3]
	j := r.sim.Topo.CoreGroup(r.sim.Topo.Switch(core).Index)
	other := r.sim.Topo.AggID((r.sim.Topo.Switch(aggD).Pod+1)%4, j)
	r.sim.SetNextHopOverride(aggD, func(pkt *netsim.Packet, _ []types.SwitchID, _ netsim.NodeID) (types.SwitchID, bool) {
		if pkt.Flow == f {
			return core, true
		}
		return 0, false
	})
	r.sim.SetNextHopOverride(core, func(pkt *netsim.Packet, _ []types.SwitchID, ingress netsim.NodeID) (types.SwitchID, bool) {
		if pkt.Flow != f {
			return 0, false
		}
		if ingress == netsim.SwitchNode(aggD) {
			return other, true
		}
		return aggD, true
	})
	r.sim.SetNextHopOverride(other, func(pkt *netsim.Packet, _ []types.SwitchID, _ netsim.NodeID) (types.SwitchID, bool) {
		if pkt.Flow == f {
			return core, true
		}
		return 0, false
	})
}

func TestRoutingLoopDetection(t *testing.T) {
	r := newRig(t, 4, netsim.Config{Seed: 5})
	var loops []LoopEvent
	r.ctrl.OnLoop(func(ev LoopEvent) { loops = append(loops, ev) })

	src := r.sim.Topo.Hosts()[0]
	dst := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(2, 0))[0]
	f := types.FlowID{SrcIP: src.IP, DstIP: dst.IP, SrcPort: 7000, DstPort: 80, Proto: types.ProtoTCP}
	buildLoop(r, f)

	start := r.sim.Now()
	r.sim.Send(src.ID, &netsim.Packet{Flow: f, Seq: 9, Size: 64})
	r.sim.RunAll()
	if len(loops) != 1 {
		t.Fatalf("detected %d loops, want 1 (alarms: %v)", len(loops), r.ctrl.Alarms())
	}
	ev := loops[0]
	if ev.Flow != f || ev.Seq != 9 {
		t.Errorf("loop event = %+v", ev)
	}
	latency := ev.DetectedAt - start
	if latency <= 0 || latency > 500*types.Millisecond {
		t.Errorf("detection latency = %v", latency)
	}
	if len(r.ctrl.AlarmsFor(types.ReasonLoop)) != 1 {
		t.Error("LOOP alarm missing")
	}
	// The loop detector needed at most 2 punt rounds (§4.5).
	if ev.Rounds < 1 || ev.Rounds > 2 {
		t.Errorf("rounds = %d", ev.Rounds)
	}
}

func TestLongPathHandlerFires(t *testing.T) {
	r := newRig(t, 4, netsim.Config{Seed: 6})
	var longs int
	r.ctrl.OnLongPath(func(at types.SwitchID, pkt *netsim.Packet) { longs++ })
	src := r.sim.Topo.Hosts()[0]
	dst := r.sim.Topo.HostsAt(r.sim.Topo.ToRID(2, 0))[0]
	f := types.FlowID{SrcIP: src.IP, DstIP: dst.IP, SrcPort: 7100, DstPort: 80, Proto: types.ProtoTCP}
	buildLoop(r, f)
	r.sim.Send(src.ID, &netsim.Packet{Flow: f, Seq: 1, Size: 64})
	r.sim.RunAll()
	if longs == 0 {
		t.Error("no long-path callback before loop conclusion")
	}
}

func TestBuildLevelsShape(t *testing.T) {
	hosts := make([]types.HostID, 112)
	for i := range hosts {
		hosts[i] = types.HostID(i)
	}
	nodes := buildLevels(hosts, []int{7, 4, 4})
	if len(nodes) != 7 {
		t.Fatalf("level-1 fanout = %d", len(nodes))
	}
	total := 0
	var count func(n *treeNode)
	count = func(n *treeNode) {
		if n.isHost {
			total++
		}
		for _, c := range n.children {
			count(c)
		}
	}
	for _, n := range nodes {
		count(n)
	}
	if total != 112 {
		t.Errorf("tree covers %d hosts, want 112", total)
	}
	// Degenerate cases.
	if got := buildLevels(nil, []int{4}); got != nil {
		t.Error("empty hosts should yield nil")
	}
	if got := buildLevels(hosts[:3], []int{7}); len(got) != 3 {
		t.Errorf("fanout larger than hosts: %d nodes", len(got))
	}
}
