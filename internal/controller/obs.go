package controller

import (
	"pathdump/internal/obs"
)

// controllerMetrics holds the controller-plane metric handles. All
// fields are nil-safe: a controller whose RegisterMetrics was never
// called pays only a nil check per query.
type controllerMetrics struct {
	queries      *obs.Counter
	queryDur     *obs.Histogram
	fanoutHosts  *obs.Histogram
	hostsQueried *obs.Counter
	hedged       *obs.Counter
	retried      *obs.Counter
	partial      *obs.Counter
	inflight     *obs.Gauge
}

// fanoutBuckets sizes the per-execution fan-out breadth histogram:
// powers of two from a single host up to a 4096-host wave.
var fanoutBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// RegisterMetrics registers the controller-plane metrics — query
// counts and latency, fan-out breadth and in-flight depth, hedge/
// retry/partial tallies, alarm-pipeline traffic, slow-query totals —
// on r. Call it once at wiring time, before queries flow; passing a
// nil registry leaves the controller uninstrumented at zero cost.
func (c *Controller) RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	m := &controllerMetrics{
		queries:      r.Counter("pathdump_controller_queries_total", "Distributed query executions started."),
		queryDur:     r.Histogram("pathdump_controller_query_seconds", "Wall-clock latency of distributed query executions.", obs.LatencyBuckets),
		fanoutHosts:  r.Histogram("pathdump_controller_fanout_hosts", "Hosts addressed per query execution (fan-out breadth).", fanoutBuckets),
		hostsQueried: r.Counter("pathdump_controller_hosts_queried_total", "Per-host answers successfully folded into query results."),
		hedged:       r.Counter("pathdump_controller_hedged_total", "Duplicate (hedged) per-host requests issued."),
		retried:      r.Counter("pathdump_controller_retried_total", "Per-host or batched-round requests re-issued after transport errors."),
		partial:      r.Counter("pathdump_controller_partial_total", "Successful executions returned with some hosts' data missing."),
		inflight:     r.Gauge("pathdump_controller_inflight_requests", "Transport requests currently outstanding (fan-out depth)."),
	}
	r.GaugeFunc("pathdump_controller_slow_queries", "Queries that crossed SlowQueryThreshold (cumulative).",
		func() float64 { return float64(c.slow.Total()) })
	r.GaugeFunc("pathdump_alarms_received", "Alarms offered to the pipeline (cumulative).",
		func() float64 { return float64(c.AlarmStats().Received) })
	r.GaugeFunc("pathdump_alarms_admitted", "Alarms admitted as new history entries (cumulative).",
		func() float64 { return float64(c.AlarmStats().Admitted) })
	r.GaugeFunc("pathdump_alarms_suppressed", "Alarms folded into an existing entry by the suppression window (cumulative).",
		func() float64 { return float64(c.AlarmStats().Suppressed) })
	r.GaugeFunc("pathdump_alarms_rate_limited", "Alarms refused by the rate limiter (cumulative).",
		func() float64 { return float64(c.AlarmStats().RateLimited) })
	r.GaugeFunc("pathdump_alarms_stream_dropped", "Alarm feed entries dropped on lagging subscribers (cumulative).",
		func() float64 { return float64(c.AlarmStats().StreamDropped) })
	r.GaugeFunc("pathdump_alarms_evicted", "Alarm history entries evicted by the bounded ring (cumulative).",
		func() float64 { return float64(c.AlarmStats().Evicted) })
	r.GaugeFunc("pathdump_alarms_subscribers", "Live alarm subscriptions (SSE streams and in-process feeds).",
		func() float64 { return float64(c.AlarmStats().Subscribers) })
	c.mu.Lock()
	c.om = m
	c.mu.Unlock()
}

// noMetrics backs uninstrumented controllers: its handles are all nil,
// so every record operation no-ops.
var noMetrics controllerMetrics

// metrics returns the registered metric set, or the shared no-op set
// when the controller is uninstrumented.
func (c *Controller) metrics() *controllerMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.om == nil {
		return &noMetrics
	}
	return c.om
}

// SlowQueries returns the retained slow-query log entries, newest
// first — executions whose wall-clock crossed SlowQueryThreshold,
// each with its trace ID and full span tree.
func (c *Controller) SlowQueries() []obs.SlowQuery {
	return c.slow.Entries()
}

// SlowLog exposes the controller's bounded slow-query log so daemons
// can serve it (rpc.ServerObs.SlowLog → GET /slowlog).
func (c *Controller) SlowLog() *obs.SlowLog {
	return c.slow
}

// attachScan hangs the agent-side scan span under a host's rpc span,
// synthesizing one from the reply's counters when the transport did
// not carry a span back (local transports, streamed wire replies,
// pre-observability daemons).
func attachScan(rpc *obs.Span, meta QueryMeta) {
	if rpc == nil {
		return
	}
	if meta.Span != nil {
		rpc.AddChild(meta.Span)
		return
	}
	scan := rpc.StartChild("scan")
	scan.SetInt("records", int64(meta.RecordsScanned))
	scan.SetInt("segments_scanned", int64(meta.SegmentsScanned))
	scan.SetInt("segments_pruned", int64(meta.SegmentsPruned))
	scan.Finish()
}
