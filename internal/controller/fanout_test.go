package controller

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pathdump/internal/query"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// slowTransport answers every query after a fixed real-time delay — the
// stand-in for a remote agent on a management network. It counts the
// maximum number of concurrently outstanding requests so tests can verify
// the fan-out bound, and honours ctx like a real wire transport would:
// cancellation cuts the in-flight delay short.
type slowTransport struct {
	delay time.Duration

	inFlight atomic.Int64
	maxSeen  atomic.Int64
	calls    atomic.Int64
}

func (s *slowTransport) Query(ctx context.Context, host types.HostID, q query.Query) (query.Result, QueryMeta, error) {
	cur := s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	for {
		max := s.maxSeen.Load()
		if cur <= max || s.maxSeen.CompareAndSwap(max, cur) {
			break
		}
	}
	s.calls.Add(1)
	timer := time.NewTimer(s.delay)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
		return query.Result{}, QueryMeta{}, ctx.Err()
	}
	res := query.Result{Op: q.Op}
	res.Top = []query.FlowBytes{{
		Flow:  types.FlowID{SrcIP: types.IP(host), DstIP: 1, SrcPort: 80, DstPort: 80, Proto: 6},
		Bytes: uint64(1000 + host),
	}}
	return res, QueryMeta{RecordsScanned: 100}, nil
}

func (s *slowTransport) Install(context.Context, types.HostID, query.Query, types.Time) (int, error) {
	return 1, nil
}
func (s *slowTransport) Uninstall(context.Context, types.HostID, int) error { return nil }

func hostRange(n int) []types.HostID {
	hosts := make([]types.HostID, n)
	for i := range hosts {
		hosts[i] = types.HostID(i)
	}
	return hosts
}

// TestFanoutParallelWallClock is the race-proving scaling test: a direct
// query over 64 hosts, each taking a real 2 ms, must complete in
// max-latency (parallel) rather than sum-latency (sequential) time — and
// with Parallelism 1 it must degrade to the sequential sum, proving the
// bound is real in both directions.
func TestFanoutParallelWallClock(t *testing.T) {
	const (
		hosts = 64
		delay = 2 * time.Millisecond
	)
	sum := time.Duration(hosts) * delay
	topo, _ := topology.FatTree(4)

	tr := &slowTransport{delay: delay}
	ctrl := New(topo, tr, nil)
	start := time.Now()
	res, stats, err := ctrl.Execute(hostRange(hosts), query.Query{Op: query.OpTopK, K: hosts})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hosts != hosts || len(res.Top) != hosts {
		t.Fatalf("merged %d hosts, %d top entries", stats.Hosts, len(res.Top))
	}
	if elapsed >= sum/4 {
		t.Errorf("unbounded fan-out took %v — sequential-ish, want well under sum %v", elapsed, sum)
	}
	if got := tr.maxSeen.Load(); got < 2 {
		t.Errorf("max concurrent requests = %d, fan-out never overlapped", got)
	}

	serial := &slowTransport{delay: delay}
	ctrlSerial := New(topo, serial, nil)
	ctrlSerial.Parallelism = 1
	start = time.Now()
	if _, _, err := ctrlSerial.Execute(hostRange(hosts), query.Query{Op: query.OpTopK, K: hosts}); err != nil {
		t.Fatal(err)
	}
	serialElapsed := time.Since(start)
	if serialElapsed < sum {
		t.Errorf("parallelism 1 took %v, want at least the sequential sum %v", serialElapsed, sum)
	}
	if got := serial.maxSeen.Load(); got != 1 {
		t.Errorf("parallelism 1 saw %d concurrent requests", got)
	}
}

// TestFanoutBoundIsRespected checks that Parallelism caps outstanding
// requests across every level of an aggregation tree, not just the root.
func TestFanoutBoundIsRespected(t *testing.T) {
	topo, _ := topology.FatTree(4)
	tr := &slowTransport{delay: time.Millisecond}
	ctrl := New(topo, tr, nil)
	ctrl.Parallelism = 4
	if _, _, err := ctrl.ExecuteTree(hostRange(96), query.Query{Op: query.OpTopK, K: 10}, []int{6, 4}); err != nil {
		t.Fatal(err)
	}
	if got := tr.maxSeen.Load(); got > 4 {
		t.Errorf("saw %d concurrent requests, bound was 4", got)
	}
	if got := tr.calls.Load(); got != 96 {
		t.Errorf("queried %d hosts, want 96", got)
	}
}

// failTransport fails one host and records which hosts were still queried
// after the failure.
type failTransport struct {
	slowTransport
	bad types.HostID
}

func (f *failTransport) Query(ctx context.Context, host types.HostID, q query.Query) (query.Result, QueryMeta, error) {
	if host == f.bad {
		return query.Result{}, QueryMeta{}, fmt.Errorf("host %v exploded", host)
	}
	return f.slowTransport.Query(ctx, host, q)
}

// TestFanoutFirstErrorSemantics: a failing host aborts the fan-out, the
// real error (not the abort echo) is reported, and the queried-host count
// stays below the full fleet because pending requests were skipped.
func TestFanoutFirstErrorSemantics(t *testing.T) {
	topo, _ := topology.FatTree(4)
	tr := &failTransport{slowTransport: slowTransport{delay: 2 * time.Millisecond}, bad: 13}
	ctrl := New(topo, tr, nil)
	ctrl.Parallelism = 4
	_, _, err := ctrl.Execute(hostRange(256), query.Query{Op: query.OpTopK, K: 5})
	if err == nil {
		t.Fatal("failing host did not fail the query")
	}
	if want := "host h13 exploded"; err.Error() != want {
		t.Errorf("err = %q, want the real failure %q", err, want)
	}
	if got := tr.calls.Load(); got >= 250 {
		t.Errorf("%d hosts queried after failure — no early abort", got)
	}
}

// TestBoundedParallelismModel: the §5.2 response-time model must reflect
// the knob. The same canned workload gets slower as modelled workers
// shrink, and parallelism 1 models the full serial sum.
func TestBoundedParallelismModel(t *testing.T) {
	topo, _ := topology.FatTree(4)
	hosts := hostRange(64)
	q := query.Query{Op: query.OpTopK, K: 100}

	modelAt := func(p int) types.Time {
		ctrl := New(topo, cannedTransport{k: 100, records: 10_000}, nil)
		ctrl.Parallelism = p
		_, stats, err := ctrl.Execute(hosts, q)
		if err != nil {
			t.Fatal(err)
		}
		return stats.ResponseTime
	}
	unlimited := modelAt(0)
	p8 := modelAt(8)
	p1 := modelAt(1)
	if !(unlimited < p8 && p8 < p1) {
		t.Errorf("model not monotone in parallelism: unlimited=%v p8=%v p1=%v", unlimited, p8, p1)
	}
	// With one modelled worker the children serialise: response must be
	// at least 64 × the per-child service floor (RTT + ExecBase).
	cost := DefaultCostModel()
	if floor := 64 * (cost.RTT + cost.ExecBase); p1 < floor {
		t.Errorf("p1 response %v below serial floor %v", p1, floor)
	}
	// Results themselves must not depend on the bound.
	ctrlA := New(topo, cannedTransport{k: 100, records: 10_000}, nil)
	ctrlB := New(topo, cannedTransport{k: 100, records: 10_000}, nil)
	ctrlB.Parallelism = 3
	ra, _, _ := ctrlA.Execute(hosts, q)
	rb, _, _ := ctrlB.Execute(hosts, q)
	if len(ra.Top) != len(rb.Top) {
		t.Fatalf("result size changed with parallelism: %d vs %d", len(ra.Top), len(rb.Top))
	}
	for i := range ra.Top {
		if ra.Top[i] != rb.Top[i] {
			t.Fatalf("entry %d differs across parallelism settings", i)
		}
	}
}

// batchTransport wraps slowTransport with a QueryMany that answers all
// hosts in one call, so tests can confirm the controller batches leaves.
type batchTransport struct {
	slowTransport
	batchCalls atomic.Int64
	batched    atomic.Int64
}

func (b *batchTransport) QueryMany(ctx context.Context, hosts []types.HostID, q query.Query, parallel int) ([]BatchReply, error) {
	b.batchCalls.Add(1)
	b.batched.Add(int64(len(hosts)))
	select {
	case <-time.After(b.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	out := make([]BatchReply, len(hosts))
	var wg sync.WaitGroup
	for i, h := range hosts {
		wg.Add(1)
		go func(i int, h types.HostID) {
			defer wg.Done()
			res := query.Result{Op: q.Op}
			res.Top = []query.FlowBytes{{
				Flow:  types.FlowID{SrcIP: types.IP(h), DstIP: 1, SrcPort: 80, DstPort: 80, Proto: 6},
				Bytes: uint64(1000 + h),
			}}
			out[i] = BatchReply{Host: h, Result: res, Meta: QueryMeta{RecordsScanned: 100}}
		}(i, h)
	}
	wg.Wait()
	return out, nil
}

// TestBatchTransportCollapsesLeafFanout: a direct query over a
// BatchTransport must issue one QueryMany for all leaves and produce the
// same merged result as per-host queries.
func TestBatchTransportCollapsesLeafFanout(t *testing.T) {
	topo, _ := topology.FatTree(4)
	hosts := hostRange(32)
	q := query.Query{Op: query.OpTopK, K: 32}

	bt := &batchTransport{slowTransport: slowTransport{delay: time.Millisecond}}
	ctrlBatch := New(topo, bt, nil)
	viaBatch, bstats, err := ctrlBatch.Execute(hosts, q)
	if err != nil {
		t.Fatal(err)
	}
	if got := bt.batchCalls.Load(); got != 1 {
		t.Errorf("QueryMany called %d times, want 1", got)
	}
	if got := bt.batched.Load(); got != 32 {
		t.Errorf("batched %d hosts, want 32", got)
	}
	if got := bt.calls.Load(); got != 0 {
		t.Errorf("%d per-host queries despite batching", got)
	}

	plain := &slowTransport{delay: time.Millisecond}
	ctrlPlain := New(topo, plain, nil)
	viaPlain, pstats, err := ctrlPlain.Execute(hosts, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaBatch.Top) != len(viaPlain.Top) {
		t.Fatalf("batch %d entries, plain %d", len(viaBatch.Top), len(viaPlain.Top))
	}
	for i := range viaBatch.Top {
		if viaBatch.Top[i] != viaPlain.Top[i] {
			t.Errorf("entry %d differs between batch and plain transports", i)
		}
	}
	if bstats.Hosts != pstats.Hosts || bstats.ResponseTime != pstats.ResponseTime {
		t.Errorf("modelled stats diverge: batch=%+v plain=%+v", bstats, pstats)
	}

	// In a tree, interior nodes still query per-host; only leaf layers
	// batch. Every host must be covered exactly once either way.
	bt2 := &batchTransport{slowTransport: slowTransport{delay: time.Millisecond}}
	ctrlTree := New(topo, bt2, nil)
	_, tstats, err := ctrlTree.ExecuteTree(hosts, q, []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tstats.Hosts != 32 {
		t.Errorf("tree over batch transport covered %d hosts", tstats.Hosts)
	}
	if total := bt2.batched.Load() + bt2.calls.Load(); total != 32 {
		t.Errorf("tree queried %d hosts total, want 32", total)
	}
}

// TestParallelInstallUninstall exercises the concurrent control fan-out
// against a non-serial transport.
func TestParallelInstallUninstall(t *testing.T) {
	topo, _ := topology.FatTree(4)
	tr := &slowTransport{delay: time.Millisecond}
	ctrl := New(topo, tr, nil)
	ctrl.Parallelism = 8
	hosts := hostRange(64)
	start := time.Now()
	ids, err := ctrl.Install(hosts, query.Query{Op: query.OpPoorTCP, Threshold: 3}, types.Second)
	if err != nil {
		t.Fatal(err)
	}
	_ = time.Since(start)
	if len(ids) != 64 {
		t.Fatalf("installed at %d hosts, want 64", len(ids))
	}
	if err := ctrl.Uninstall(ids); err != nil {
		t.Fatal(err)
	}

	// Error semantics: errors.Is works through the fan-out.
	bad := &failingInstall{}
	ctrlBad := New(topo, bad, nil)
	ctrlBad.Parallelism = 4
	if _, err := ctrlBad.Install(hosts, query.Query{}, 0); !errors.Is(err, errBoom) {
		t.Errorf("install error = %v, want errBoom", err)
	}
}

var errBoom = errors.New("boom")

type failingInstall struct{ slowTransport }

func (f *failingInstall) Install(ctx context.Context, h types.HostID, q query.Query, p types.Time) (int, error) {
	if h == 7 {
		return 0, errBoom
	}
	return 1, nil
}

// BenchmarkParallelFanoutSim models the fan-out schedule with a
// simulated transport: Controller.Execute over 128 hosts, each query
// costing a flat 200 µs, at parallelism 1 versus 8. The parallel run
// must come in at least 4× faster (ideally ~8×: 16 waves of 8 versus
// 128 serial calls). The end-to-end acceptance benchmark — real
// loopback HTTP, codec and connection reuse included — is
// BenchmarkParallelFanout in internal/rpc; this one isolates the
// scheduling overhead alone.
func BenchmarkParallelFanoutSim(b *testing.B) {
	topo, _ := topology.FatTree(4)
	hosts := hostRange(128)
	q := query.Query{Op: query.OpTopK, K: 128}
	for _, p := range []int{1, 8} {
		b.Run(fmt.Sprintf("parallelism-%d", p), func(b *testing.B) {
			tr := &slowTransport{delay: 200 * time.Microsecond}
			ctrl := New(topo, tr, nil)
			ctrl.Parallelism = p
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ctrl.Execute(hosts, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
