package experiments

import (
	"testing"

	"pathdump"
)

// These smoke tests run each experiment at a drastically reduced scale and
// assert the paper's qualitative shape — the full-scale runs live behind
// cmd/experiments and are recorded in EXPERIMENTS.md.

func TestFig5Shape(t *testing.T) {
	r := Fig5(Fig5Config{Duration: 30 * pathdump.Second, LinkBps: 50e6, Seed: 1})
	if r.Flows == 0 {
		t.Fatal("no flows generated")
	}
	if len(r.Windows) != 6 {
		t.Fatalf("windows = %d", len(r.Windows))
	}
	// The size-based splitter must push nearly all bytes onto link 1.
	last := r.Windows[len(r.Windows)-1]
	if last.Link1 <= last.Link2 {
		t.Errorf("elephants not concentrated: link1=%d link2=%d", last.Link1, last.Link2)
	}
	// Link 2's recorded flows are all mice; link 1's are mostly ≥1 MB
	// (elephants still in flight at run end record partial byte counts,
	// so the short run cannot reach the full run's 0.98).
	big1, small2 := r.SplitQuality(1_000_000)
	if big1 < 0.5 || small2 < 0.95 {
		t.Errorf("split not sharp: big1=%.2f small2=%.2f", big1, small2)
	}
}

func TestFig6Shape(t *testing.T) {
	r := Fig6(Fig6Config{FlowBytes: 500_000, Seed: 2})
	if len(r.Balanced) != 4 {
		t.Fatalf("balanced spray used %d paths, want 4", len(r.Balanced))
	}
	if r.ImbalancedRate <= r.BalancedRate {
		t.Errorf("bias did not raise imbalance: %.1f%% vs %.1f%%",
			r.ImbalancedRate, r.BalancedRate)
	}
}

func TestFig7Shape(t *testing.T) {
	r := Fig7(Fig7Config{
		Faulty: 1, LossRate: 0.03, Load: 0.7, LinkBps: 20e6,
		Duration: 40 * pathdump.Second, Runs: 1, Seed: 3,
	})
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	final := r.Points[len(r.Points)-1]
	if final.Recall < 1 {
		t.Errorf("recall = %.2f after 40s at 3%% loss", final.Recall)
	}
	if final.Precision < 0.5 {
		t.Errorf("precision = %.2f", final.Precision)
	}
}

func TestFig9Shape(t *testing.T) {
	r := Fig9(Fig9Config{})
	if !r.FourHop.Detected || !r.SixHop.Detected {
		t.Fatal("loops not detected")
	}
	if r.FourHop.Rounds != 1 {
		t.Errorf("4-hop loop needed %d rounds, want 1", r.FourHop.Rounds)
	}
	if r.SixHop.Rounds != 2 {
		t.Errorf("6-hop loop needed %d rounds, want 2", r.SixHop.Rounds)
	}
	// The paper's ratio: the 6-hop loop takes ~2.4× longer (47→115 ms).
	ratio := float64(r.SixHop.Latency) / float64(r.FourHop.Latency)
	if ratio < 1.8 || ratio > 3.2 {
		t.Errorf("6-hop/4-hop latency ratio = %.2f, want ≈2.5", ratio)
	}
}

func TestFig10Shape(t *testing.T) {
	r := Fig10(Fig10Config{FlowBytes: 2_000_000, Duration: 3 * pathdump.Second, Seed: 4})
	if len(r.Diagnosis.Senders) < 10 {
		t.Fatalf("senders = %d", len(r.Diagnosis.Senders))
	}
	if r.AlarmSources == 0 {
		t.Error("no POOR_PERF alarms under heavy incast")
	}
	for _, s := range r.Diagnosis.Senders {
		if s.ThroughputBps <= 0 {
			t.Errorf("sender %v has zero throughput", s.Flow)
		}
	}
}

func TestFig11And12Shape(t *testing.T) {
	cfg := ScaleConfig{Records: 5_000, K: 500, Hosts: []int{28, 112}, Seed: 5}
	for name, fig := range map[string]func(ScaleConfig) *ScaleResult{"fig11": Fig11, "fig12": Fig12} {
		r := fig(cfg)
		if len(r.Points) != 2 {
			t.Fatalf("%s: points = %d", name, len(r.Points))
		}
		small, big := r.Points[0], r.Points[1]
		if big.Direct.ResponseTime <= small.Direct.ResponseTime {
			t.Errorf("%s: direct did not grow with hosts", name)
		}
		growD := float64(big.Direct.ResponseTime) / float64(small.Direct.ResponseTime)
		growT := float64(big.Tree.ResponseTime) / float64(small.Tree.ResponseTime)
		if growT >= growD {
			t.Errorf("%s: tree (%.2fx) grew faster than direct (%.2fx)", name, growT, growD)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	r := Fig13(Fig13Config{Packets: 20_000, Sizes: []int{64, 1500}, Seed: 6})
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.PathDumpMpps <= 0 || row.VanillaMpps <= 0 {
			t.Fatalf("non-positive throughput: %+v", row)
		}
		if row.PathDumpMpps > row.VanillaMpps {
			t.Errorf("PathDump faster than vanilla at %dB?", row.Size)
		}
	}
	// Bits/s grows with packet size (per-packet cost ~flat).
	if r.Rows[1].PathDumpGbps <= r.Rows[0].PathDumpGbps {
		t.Error("Gb/s did not grow with packet size")
	}
}

func TestTable2(t *testing.T) {
	rows := Table2()
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 15 (the paper's Table 2)", len(rows))
	}
	s, total := Table2Score()
	if 100*s < 85*total {
		t.Errorf("support %d/%d below the paper's >85%%", s, total)
	}
	unsupported := 0
	for _, r := range rows {
		if !r.Supported {
			unsupported++
		}
		if r.Where == "" {
			t.Errorf("%s has no implementation pointer", r.Application)
		}
	}
	if unsupported != 2 {
		t.Errorf("unsupported = %d, want 2 (overlay loop, packet modification)", unsupported)
	}
}

func TestStorage(t *testing.T) {
	r := Storage(StorageConfig{Records: 5_000, MemEntries: 500, CacheSize: 512})
	if r.Records == 0 || r.SnapshotBytes == 0 {
		t.Fatal("empty measurement")
	}
	if r.BytesPerRecord < 20 || r.BytesPerRecord > 2000 {
		t.Errorf("bytes/record = %.0f looks wrong", r.BytesPerRecord)
	}
	if r.MemEntries != 500 || r.CacheEntries != 500 {
		t.Errorf("hot state: mem=%d cache=%d", r.MemEntries, r.CacheEntries)
	}
}
