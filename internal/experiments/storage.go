package experiments

import (
	"bytes"

	"pathdump/internal/cherrypick"
	"pathdump/internal/tib"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// StorageConfig parameterises the §5.3 storage-overhead measurement.
type StorageConfig struct {
	Records    int // TIB entries (default 240 000 ≈ one hour of flows)
	MemEntries int // live trajectory-memory records (default 4 000)
	CacheSize  int // trajectory-cache entries (default 4 096)
	Seed       int64
}

func (c StorageConfig) withDefaults() StorageConfig {
	if c.Records == 0 {
		c.Records = 240_000
	}
	if c.MemEntries == 0 {
		c.MemEntries = 4_000
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4_096
	}
	return c
}

// StorageResult reproduces the §5.3 storage numbers: the paper reports
// ~110 MB of disk for 240 K TIB entries and ~10 MB of RAM for decoding,
// trajectory memory and trajectory cache.
type StorageResult struct {
	Records        int
	SnapshotBytes  int     // serialised TIB size
	BytesPerRecord float64 // snapshot bytes / record
	// ApproxRAMBytes estimates the resident footprint of the hot state:
	// trajectory memory + trajectory cache entries.
	MemEntries     int
	CacheEntries   int
	ApproxRAMBytes int
}

// Storage builds a paper-scale TIB and measures it.
func Storage(cfg StorageConfig) *StorageResult {
	cfg = cfg.withDefaults()
	topo, err := topology.FatTree(4)
	if err != nil {
		panic(err)
	}
	store := synthTIB(topo, cfg.Records, cfg.Seed+29)

	var buf bytes.Buffer
	if err := store.Snapshot(&buf); err != nil {
		panic(err)
	}
	res := &StorageResult{
		Records:        store.Len(),
		SnapshotBytes:  buf.Len(),
		BytesPerRecord: float64(buf.Len()) / float64(store.Len()),
	}

	// Hot-state footprint: populate a trajectory memory and cache at the
	// paper's load point and estimate per-entry sizes structurally.
	mem := tib.NewMemory(0)
	cache := tib.NewCache(cfg.CacheSize)
	for i := 0; i < cfg.MemEntries; i++ {
		f := types.FlowID{SrcIP: types.IP(i), DstIP: 1, SrcPort: uint16(i), DstPort: 80, Proto: 6}
		hdr := cherrypick.Header{VLANs: []uint16{uint16(i % 4096)}}
		mem.Update(types.Time(i), f, hdr, 1000, false)
		cache.Put(f.SrcIP, hdr.Key(), types.Path{0, 8, 16, 10, 2})
	}
	res.MemEntries = mem.Len()
	res.CacheEntries = cache.Len()
	const memEntryBytes = 96    // MemEntry + map overhead, measured structurally
	const cacheEntryBytes = 120 // list element + path + key
	res.ApproxRAMBytes = res.MemEntries*memEntryBytes + res.CacheEntries*cacheEntryBytes
	return res
}
