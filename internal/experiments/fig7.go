package experiments

import (
	"math/rand"

	"pathdump"
	"pathdump/internal/types"
)

// Fig7Config parameterises the §4.3 silent-random-drop experiment: N
// randomly chosen aggregate↔core interfaces drop packets at LossRate, web
// traffic runs at Load, end-host monitors alarm, and the controller's
// MAX-COVERAGE localiser is scored over time. The paper runs 10 times at
// 1 GbE for 150 s; the defaults scale the fabric to 30 Mb/s and 2 runs.
type Fig7Config struct {
	Faulty    int           // number of faulty interfaces (1, 2 or 4)
	LossRate  float64       // default 0.01
	Load      float64       // default 0.7
	LinkBps   int64         // default 30 Mb/s
	Duration  pathdump.Time // default 150 s
	Sample    pathdump.Time // accuracy sampling period, default 10 s
	Runs      int           // default 2
	Threshold int           // monitor threshold, default 3
	Seed      int64
}

func (c Fig7Config) withDefaults() Fig7Config {
	if c.Faulty == 0 {
		c.Faulty = 1
	}
	if c.LossRate == 0 {
		c.LossRate = 0.01
	}
	if c.Load == 0 {
		c.Load = 0.7
	}
	if c.LinkBps == 0 {
		c.LinkBps = 30e6
	}
	if c.Duration == 0 {
		c.Duration = 150 * pathdump.Second
	}
	if c.Sample == 0 {
		c.Sample = 10 * pathdump.Second
	}
	if c.Runs == 0 {
		c.Runs = 2
	}
	if c.Threshold == 0 {
		c.Threshold = 3
	}
	return c
}

// Fig7Point is one (time, recall, precision) sample averaged over runs.
type Fig7Point struct {
	T                 pathdump.Time
	Recall, Precision float64
	Signatures        float64
}

// Fig7Result reproduces one curve of Figure 7.
type Fig7Result struct {
	Faulty int
	Points []Fig7Point
	// TimeTo100 is the first sample where recall and precision both hit
	// 1 in every run (Fig. 8's metric); negative when never reached.
	TimeTo100 pathdump.Time
}

// Fig7 runs the experiment for one faulty-interface count.
func Fig7(cfg Fig7Config) *Fig7Result {
	cfg = cfg.withDefaults()
	samples := int(cfg.Duration / cfg.Sample)
	res := &Fig7Result{Faulty: cfg.Faulty, TimeTo100: -1}
	res.Points = make([]Fig7Point, samples)
	for i := range res.Points {
		res.Points[i].T = cfg.Sample * pathdump.Time(i+1)
	}

	for run := 0; run < cfg.Runs; run++ {
		seed := cfg.Seed + int64(run)*101
		c := buildCluster(pathdump.NetConfig{BandwidthBps: cfg.LinkBps, Seed: seed})
		faulty := pickFaultyLinks(c, cfg.Faulty, seed)
		for _, l := range faulty {
			c.SetSilentDrop(l.A, l.B, cfg.LossRate)
		}
		dbg := c.NewSilentDropDebugger()
		if _, err := c.InstallTCPMonitor(cfg.Threshold, 200*pathdump.Millisecond); err != nil {
			panic(err)
		}
		hosts := c.HostIDs()
		startWebTraffic(c, hosts, hosts, cfg.Load, cfg.LinkBps, cfg.Duration, seed+7)

		for i := 0; i < samples; i++ {
			c.Run(res.Points[i].T)
			r, p := dbg.Accuracy(faulty)
			res.Points[i].Recall += r / float64(cfg.Runs)
			res.Points[i].Precision += p / float64(cfg.Runs)
			res.Points[i].Signatures += float64(dbg.Signatures()) / float64(cfg.Runs)
		}
	}
	for _, pt := range res.Points {
		if pt.Recall >= 0.999 && pt.Precision >= 0.999 {
			res.TimeTo100 = pt.T
			break
		}
	}
	return res
}

// pickFaultyLinks selects n distinct aggregate→core interfaces.
func pickFaultyLinks(c *pathdump.Cluster, n int, seed int64) []pathdump.LinkID {
	rng := rand.New(rand.NewSource(seed))
	var candidates []pathdump.LinkID
	for _, aggID := range c.Topo.Aggs() {
		for _, core := range c.Topo.Switch(aggID).Up {
			candidates = append(candidates, types.LinkID{A: aggID, B: core})
		}
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if n > len(candidates) {
		n = len(candidates)
	}
	return candidates[:n]
}

// Fig8Result reproduces Figure 8: time to reach 100% recall and precision
// as loss rate and offered load vary.
type Fig8Result struct {
	// ByLossRate maps loss rate (%) → convergence time at fixed load.
	LossRates []float64
	ByLoss    []pathdump.Time
	// ByLoad maps offered load (%) → convergence time at fixed loss.
	Loads  []float64
	ByLoad []pathdump.Time
}

// Fig8Config parameterises the sweep; the embedded Fig7Config supplies
// the per-cell experiment parameters.
type Fig8Config struct {
	Base      Fig7Config
	LossRates []float64 // default {0.01, 0.02, 0.03, 0.04}
	Loads     []float64 // default {0.3, 0.5, 0.7, 0.9}
}

// Fig8 runs the two sweeps of Figure 8 for the configured faulty count.
func Fig8(cfg Fig8Config) *Fig8Result {
	if len(cfg.LossRates) == 0 {
		cfg.LossRates = []float64{0.01, 0.02, 0.03, 0.04}
	}
	if len(cfg.Loads) == 0 {
		cfg.Loads = []float64{0.3, 0.5, 0.7, 0.9}
	}
	res := &Fig8Result{LossRates: cfg.LossRates, Loads: cfg.Loads}
	for _, lr := range cfg.LossRates {
		c := cfg.Base
		c.LossRate = lr
		res.ByLoss = append(res.ByLoss, Fig7(c).TimeTo100)
	}
	for _, ld := range cfg.Loads {
		c := cfg.Base
		c.Load = ld
		res.ByLoad = append(res.ByLoad, Fig7(c).TimeTo100)
	}
	return res
}
