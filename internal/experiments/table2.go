package experiments

// Table2Row is one debugging application of the paper's Table 2, with
// PathDump's support status and where this repository implements and
// verifies it.
type Table2Row struct {
	Application string
	Description string
	Supported   bool
	// Where points at the implementing module and the test or experiment
	// exercising it.
	Where string
}

// Table2 reproduces the application-support matrix (appendix Table 2).
// The two unsupported rows match the paper: overlay-loop detection and
// incorrect packet modification need in-network help — though PathDump
// still *pinpoints* bad switch IDs when the forged trajectory is
// infeasible (§2.4), surfaced here as INVALID_TRAJECTORY alarms.
func Table2() []Table2Row {
	return []Table2Row{
		{"Loop freedom", "Detect forwarding loops", true,
			"controller/loop.go — TestRoutingLoopDetection, fig9"},
		{"Load imbalance diagnosis", "Fine-grained statistics of all flows on set of links", true,
			"apps/imbalance.go — TestFlowSizeDistributionAndImbalance, fig5"},
		{"Congested link diagnosis", "Find flows using a congested link, to help rerouting", true,
			"apps.CongestedLinkFlows — TestTopKMatrixDDoSWaypointIsolation"},
		{"Silent blackhole detection", "Find switch that drops all packets silently", true,
			"apps/blackhole.go — TestBlackholeDiagnosis, examples/blackhole"},
		{"Silent packet drop detection", "Find switch that drops packets silently and randomly", true,
			"apps/silentdrop.go + maxcov — TestSilentDropDebuggerEndToEnd, fig7/fig8"},
		{"Packet drops on servers", "Localize packet drop sources (network vs. server)", true,
			"TIB byte counts at edge vs. sender counters — apps/blackhole.go"},
		{"Overlay loop detection", "Loop between SLB and physical IP", false,
			"needs in-network view of encapsulated traffic (paper: unsupported)"},
		{"Protocol bugs", "Bugs in the implementation of network protocols", true,
			"per-path flow records expose anomalous retransmission/paths — tcp tests"},
		{"Isolation", "Check if hosts are allowed to talk", true,
			"apps.IsolationViolations — TestTopKMatrixDDoSWaypointIsolation"},
		{"Incorrect packet modification", "Localize switch that modifies packet incorrectly", false,
			"partial: infeasible trajectories raise INVALID_TRAJECTORY (§2.4) — TestReconstructDetectsWrongSwitchID"},
		{"Waypoint routing", "Identify packets not passing through a waypoint", true,
			"apps.WaypointViolations — TestTopKMatrixDDoSWaypointIsolation"},
		{"DDoS diagnosis", "Get statistics of DDoS attack sources", true,
			"apps.DDoSSources — TestTopKMatrixDDoSWaypointIsolation"},
		{"Traffic matrix", "Traffic volume between switch pairs", true,
			"query.OpMatrix — TestExecuteMatrixAndRecords"},
		{"Netshark", "Network-wide path-aware packet logger", true,
			"query.OpRecords over distributed TIBs — TestExecuteMatrixAndRecords"},
		{"Max path length", "No packet should exceed path length n", true,
			"query.OpConformance — TestEventTriggeredConformance, §4.1"},
	}
}

// Table2Score summarises the matrix as the paper does ("more than 85%").
func Table2Score() (supported, total int) {
	rows := Table2()
	for _, r := range rows {
		if r.Supported {
			supported++
		}
	}
	return supported, len(rows)
}
