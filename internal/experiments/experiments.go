// Package experiments regenerates every table and figure of the paper's
// evaluation (§4, §5) over the simulated substrate. Each experiment is a
// pure function from a config (with paper-faithful defaults, scaled to
// run on a laptop) to a structured result; cmd/experiments renders them
// as text and the root bench_test.go wraps them in testing.B benchmarks.
//
// Absolute numbers differ from the paper — its testbed was 28 physical
// servers with hardware switches — but each experiment preserves the
// paper's shape: who wins, by what factor, and where behaviour changes.
// EXPERIMENTS.md records paper-vs-measured for every figure.
package experiments

import (
	"fmt"

	"pathdump"
	"pathdump/internal/workload"
)

// buildCluster builds a 4-ary fat-tree cluster with the given fabric
// config, failing loudly: experiment configs are static and must be valid.
func buildCluster(net pathdump.NetConfig) *pathdump.Cluster {
	c, err := pathdump.NewFatTree(4, pathdump.Config{Net: net})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return c
}

// startWebTraffic launches the web-workload generator used by §4.2–§4.4.
func startWebTraffic(c *pathdump.Cluster, srcs, dsts []pathdump.HostID, load float64, linkBps int64, until pathdump.Time, seed int64) *workload.Generator {
	gen, err := workload.NewGenerator(c.Sim, c.Stacks, workload.GenConfig{
		Sources: srcs, Dests: dsts,
		Load: load, LinkBps: linkBps,
		Dist:  workload.WebSearch(),
		Until: until, Seed: seed,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	gen.Start()
	return gen
}

// podHosts partitions host IDs by pod: srcs from `srcPod`, dsts from the
// rest.
func podHosts(c *pathdump.Cluster, srcPod int) (srcs, dsts []pathdump.HostID) {
	for _, h := range c.Topo.Hosts() {
		if h.Pod == srcPod {
			srcs = append(srcs, h.ID)
		} else {
			dsts = append(dsts, h.ID)
		}
	}
	return srcs, dsts
}
