package experiments

import (
	"pathdump"
	"pathdump/internal/apps"
	"pathdump/internal/netsim"
	"pathdump/internal/types"
)

// Fig6Config parameterises the §4.2 packet-spraying experiment: one large
// flow sprayed across the four equal-cost paths, once with unbiased
// per-packet spraying and once with switches deliberately favouring one
// path. The paper uses a 100 MB flow; the default here is 10 MB.
type Fig6Config struct {
	FlowBytes int64 // default 10 MB
	LinkBps   int64 // default 200 Mb/s
	// BiasNum/BiasDen bias the imbalanced case: at each spray choice the
	// favoured port is taken BiasNum out of BiasDen times (default 2/3).
	BiasNum, BiasDen uint64
	Seed             int64
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.FlowBytes == 0 {
		c.FlowBytes = 10_000_000
	}
	if c.LinkBps == 0 {
		c.LinkBps = 200e6
	}
	if c.BiasDen == 0 {
		c.BiasNum, c.BiasDen = 2, 3
	}
	return c
}

// Fig6Result reproduces Figure 6: per-path bytes of the flow under the
// balanced and imbalanced configurations, read from the destination TIB.
type Fig6Result struct {
	Balanced   []apps.PathBytes
	Imbalanced []apps.PathBytes
	// Rates are the spray-imbalance metrics of the two cases.
	BalancedRate, ImbalancedRate float64
}

// Fig6 runs both cases.
func Fig6(cfg Fig6Config) *Fig6Result {
	cfg = cfg.withDefaults()
	run := func(biased bool) []apps.PathBytes {
		c := buildCluster(pathdump.NetConfig{
			BandwidthBps: cfg.LinkBps, Spray: true, Seed: cfg.Seed,
		})
		topo := c.Topo
		hosts := c.HostIDs()
		src, dst := hosts[0], hosts[8]
		if biased {
			// Configure the source ToR and aggregation switches to
			// prefer their first port for a skewed share of packets.
			bias := func(pkt *netsim.Packet, canonical []types.SwitchID, _ netsim.NodeID) (types.SwitchID, bool) {
				if len(canonical) < 2 || pkt.Ack {
					return 0, false
				}
				key := pkt.Seq
				if pkt.XmitID != 0 {
					key = pkt.XmitID
				}
				// Decorrelate the choice across switches so the bias
				// compounds over hops instead of replaying: mix the key
				// with the switch identity and take high bits (low-bit
				// modular arithmetic is a permutation, not a hash).
				key = (key ^ uint64(canonical[0])<<17 ^ uint64(canonical[0])) * 0x9E3779B97F4A7C15
				if (key>>33)%cfg.BiasDen < cfg.BiasNum {
					return canonical[0], true
				}
				return canonical[1], true
			}
			srcToR := topo.Host(src).ToR
			c.Sim.SetNextHopOverride(srcToR, bias)
			for j := 0; j < 2; j++ {
				c.Sim.SetNextHopOverride(topo.AggID(0, j), bias)
			}
		}
		f, err := c.StartFlow(src, dst, 8080, cfg.FlowBytes, nil)
		if err != nil {
			panic(err)
		}
		c.RunAll()
		sub, err := c.SubflowBytes(f, pathdump.AllTime)
		if err != nil {
			panic(err)
		}
		return sub
	}
	res := &Fig6Result{Balanced: run(false), Imbalanced: run(true)}
	res.BalancedRate = apps.SprayImbalance(res.Balanced)
	res.ImbalancedRate = apps.SprayImbalance(res.Imbalanced)
	return res
}
