package experiments

import (
	"pathdump"
	"pathdump/internal/apps"
	"pathdump/internal/netsim"
	"pathdump/internal/types"
)

// Fig10Config parameterises the §4.6 TCP outcast experiment: 15 senders —
// one in the receiver's own pod (two hops away), the rest across the
// fabric — push data to a single receiver whose ToR output port becomes
// the bottleneck. Shallow drop-tail queues produce the port-blackout
// pattern that penalises the closest flow.
type Fig10Config struct {
	Senders    int           // default 15
	FlowBytes  int64         // default 40 MB (senders stay active all run)
	LinkBps    int64         // default 100 Mb/s
	QueueBytes int           // default 15 kB (shallow: port blackout)
	Duration   pathdump.Time // default 10 s (the paper's)
	MinAlerts  int           // alerts from distinct sources to trigger, default 10
	Seed       int64
}

func (c Fig10Config) withDefaults() Fig10Config {
	if c.Senders == 0 {
		c.Senders = 15
	}
	if c.FlowBytes == 0 {
		c.FlowBytes = 40_000_000 // outlives the run: senders transmit throughout
	}
	if c.LinkBps == 0 {
		c.LinkBps = 100e6
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = 6_000 // shallow buffer: the port-blackout regime
	}
	if c.Duration == 0 {
		c.Duration = 10 * pathdump.Second
	}
	if c.MinAlerts == 0 {
		c.MinAlerts = 10
	}
	return c
}

// Fig10Result reproduces Figure 10: per-sender throughput (a) and the
// hop-count tree behind the communication graph (b), plus the automatic
// diagnosis verdict.
type Fig10Result struct {
	Diagnosis *apps.OutcastDiagnosis
	// AlarmSources is how many distinct sources raised POOR_PERF.
	AlarmSources int
	// WatcherFired reports whether the alert-driven watcher triggered
	// the diagnosis on its own (§4.6: "starts to work when it sees a
	// minimum of 10 alerts from different sources").
	WatcherFired bool
	// VictimIsClosest is the outcast signature.
	VictimIsClosest bool
}

// steer pins the upward port choices so that traffic toward recv from the
// close sender uses aggregation position 0 and everyone else's uses
// position 1 — the paper's two-input-port contention pattern.
func steer(c *pathdump.Cluster, recv pathdump.IP, close pathdump.HostID) {
	topo := c.Topo
	closeIP := c.HostIP(close)
	pick := func(want int) func(*netsim.Packet, []types.SwitchID, netsim.NodeID) (types.SwitchID, bool) {
		return func(pkt *netsim.Packet, canonical []types.SwitchID, _ netsim.NodeID) (types.SwitchID, bool) {
			if pkt.Ack || pkt.Flow.DstIP != recv || len(canonical) < 2 {
				return 0, false
			}
			if pkt.Flow.SrcIP == closeIP {
				return canonical[0], true
			}
			return canonical[want], true
		}
	}
	for _, tor := range topo.ToRs() {
		c.Sim.SetNextHopOverride(tor, pick(1))
	}
	for _, agg := range topo.Aggs() {
		// Upward choices at aggregation switches only exist outside the
		// destination pod; position is irrelevant there because the
		// descent into pod 0 is fixed by the core group.
		c.Sim.SetNextHopOverride(agg, pick(1))
	}
}

// Fig10 runs the experiment.
func Fig10(cfg Fig10Config) *Fig10Result {
	cfg = cfg.withDefaults()
	c := buildCluster(pathdump.NetConfig{
		BandwidthBps: cfg.LinkBps,
		QueueBytes:   cfg.QueueBytes,
		Seed:         cfg.Seed,
	})
	topo := c.Topo
	recv := topo.HostsAt(topo.ToRID(0, 0))[0]

	res := &Fig10Result{}
	apps.NewOutcastWatcher(c.Ctrl, cfg.MinAlerts, func(*apps.OutcastDiagnosis) { res.WatcherFired = true })
	if _, err := c.InstallTCPMonitor(2, 200*pathdump.Millisecond); err != nil {
		panic(err)
	}

	// f1 is the closest sender: the receiver's pod neighbour, entering
	// the ToR through aggregation port 0. Every other sender is steered
	// through aggregation port 1, reproducing the paper's Fig. 10(b)
	// communication graph: one flow on one input port of switch T, the
	// rest arriving together on the other, all competing for the output
	// port toward R.
	var senders []pathdump.HostID
	senders = append(senders, topo.HostsAt(topo.ToRID(0, 1))[0].ID)
	for _, h := range topo.Hosts() {
		if len(senders) >= cfg.Senders {
			break
		}
		// The receiver's own rack is excluded: those flows enter T on
		// the host-facing port, outside the two contended input ports.
		if h.ToR != recv.ToR && h.ID != senders[0] {
			senders = append(senders, h.ID)
		}
	}
	steer(c, recv.IP, senders[0])

	for _, s := range senders {
		if _, err := c.StartFlow(s, recv.ID, 5001, cfg.FlowBytes, nil); err != nil {
			panic(err)
		}
	}
	c.Run(cfg.Duration)

	srcs := map[pathdump.IP]bool{}
	for _, a := range c.Alarms() {
		if a.Reason == pathdump.ReasonPoorPerf && a.Flow.DstIP == recv.IP {
			srcs[a.Flow.SrcIP] = true
		}
	}
	res.AlarmSources = len(srcs)

	d, err := c.DiagnoseOutcast(recv.IP, pathdump.AllTime)
	if err != nil {
		panic(err)
	}
	res.Diagnosis = d
	minHops := d.Senders[0].Hops
	for _, s := range d.Senders {
		if s.Hops < minHops {
			minHops = s.Hops
		}
	}
	res.VictimIsClosest = d.Victim.Hops == minHops
	return res
}
