package experiments

import (
	"context"
	"math/rand"

	"pathdump"
	"pathdump/internal/controller"
	"pathdump/internal/query"
	"pathdump/internal/tib"
	"pathdump/internal/topology"
	"pathdump/internal/types"
	"pathdump/internal/workload"
)

// The §5.2 query-performance experiments run against TIBs of 240 000 flow
// entries per host — roughly one hour of flows at a server (§5.1). The
// fabric is irrelevant there (no packets flow); what matters is query
// execution over realistically sized TIBs, result serialisation, and the
// aggregation strategy. synthTIB builds such a TIB; synthTransport serves
// it for a configurable number of logical hosts. All hosts share one
// store: per-host results and the cost model see identical record counts,
// which is exactly the experiment's controlled variable.

// synthTIB populates a store with n records over the given topology.
func synthTIB(t *topology.Topology, n int, seed int64) *tib.Store {
	rng := rand.New(rand.NewSource(seed))
	r := topology.NewRouter(t)
	dist := workload.WebSearch()
	hosts := t.Hosts()
	s := tib.NewStore()
	for i := 0; i < n; i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		if src.ID == dst.ID {
			continue
		}
		paths := r.EqualCostPaths(src.IP, dst.IP)
		p := paths[rng.Intn(len(paths))]
		bytes := uint64(dist.Sample(rng))
		st := types.Time(rng.Int63n(int64(3600 * types.Second)))
		s.Add(types.Record{
			Flow: types.FlowID{
				SrcIP: src.IP, DstIP: dst.IP,
				SrcPort: uint16(1024 + i%60000), DstPort: 80, Proto: types.ProtoTCP,
			},
			Path:  p,
			STime: st,
			ETime: st + types.Time(rng.Int63n(int64(5*types.Second))),
			Bytes: bytes,
			Pkts:  bytes/1460 + 1,
		})
	}
	return s
}

// synthTransport serves one shared synthetic TIB for any host ID.
type synthTransport struct {
	view    query.StoreView
	records int
}

func (t synthTransport) Query(ctx context.Context, host types.HostID, q query.Query) (query.Result, controller.QueryMeta, error) {
	return query.Execute(q, t.view), controller.QueryMeta{RecordsScanned: t.records}, nil
}

func (t synthTransport) Install(context.Context, types.HostID, query.Query, types.Time) (int, error) {
	return 0, nil
}
func (t synthTransport) Uninstall(context.Context, types.HostID, int) error { return nil }

// ScaleConfig parameterises the Fig. 11/12 host-count sweeps.
type ScaleConfig struct {
	Records int   // TIB entries per host (default 240 000, §5.1)
	K       int   // top-k size for Fig. 12 (default 10 000)
	Hosts   []int // default {28, 56, 84, 112}
	Seed    int64
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Records == 0 {
		c.Records = 240_000
	}
	if c.K == 0 {
		c.K = 10_000
	}
	if len(c.Hosts) == 0 {
		c.Hosts = []int{28, 56, 84, 112}
	}
	return c
}

// ScalePoint is one host-count measurement.
type ScalePoint struct {
	Hosts  int
	Direct pathdump.ExecStats
	Tree   pathdump.ExecStats
}

// ScaleResult reproduces Figure 11 (flow-size-distribution query) or
// Figure 12 (top-k query): response time and traffic, direct vs
// multi-level, as the number of end-hosts grows.
type ScaleResult struct {
	Query  query.Query
	Points []ScalePoint
}

// Fig11 sweeps the flow-size-distribution query.
func Fig11(cfg ScaleConfig) *ScaleResult {
	cfg = cfg.withDefaults()
	topo, err := topology.FatTree(4)
	if err != nil {
		panic(err)
	}
	q := query.Query{
		Op: query.OpFSD,
		Links: []types.LinkID{
			{A: topo.AggID(0, 0), B: topo.CoreID(0)},
			{A: topo.AggID(0, 0), B: topo.CoreID(1)},
		},
		BinBytes: 10_000,
	}
	return scaleSweep(topo, q, cfg)
}

// Fig12 sweeps the top-k query.
func Fig12(cfg ScaleConfig) *ScaleResult {
	cfg = cfg.withDefaults()
	topo, err := topology.FatTree(4)
	if err != nil {
		panic(err)
	}
	q := query.Query{Op: query.OpTopK, K: cfg.K}
	return scaleSweep(topo, q, cfg)
}

func scaleSweep(topo *topology.Topology, q query.Query, cfg ScaleConfig) *ScaleResult {
	store := synthTIB(topo, cfg.Records, cfg.Seed+13)
	ctrl := controller.New(topo, synthTransport{
		view:    query.StoreView{S: store},
		records: cfg.Records,
	}, nil)

	res := &ScaleResult{Query: q}
	for _, n := range cfg.Hosts {
		hosts := make([]types.HostID, n)
		for i := range hosts {
			hosts[i] = types.HostID(i)
		}
		_, direct, err := ctrl.Execute(hosts, q)
		if err != nil {
			panic(err)
		}
		_, tree, err := ctrl.ExecuteTree(hosts, q, []int{7, 4, 4})
		if err != nil {
			panic(err)
		}
		res.Points = append(res.Points, ScalePoint{Hosts: n, Direct: direct, Tree: tree})
	}
	return res
}
