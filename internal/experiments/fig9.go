package experiments

import (
	"pathdump"
	"pathdump/internal/netsim"
	"pathdump/internal/types"
)

// Fig9Config parameterises the §4.5 routing-loop experiment. PuntDelay is
// the switch→controller slow-path latency; the default of 45 ms
// calibrates the 4-hop case to the paper's ~47 ms (their loop detection
// time is dominated by exactly this punt path).
type Fig9Config struct {
	PuntDelay pathdump.Time // default 45 ms
	Seed      int64
}

func (c Fig9Config) withDefaults() Fig9Config {
	if c.PuntDelay == 0 {
		c.PuntDelay = 45 * pathdump.Millisecond
	}
	return c
}

// Fig9Case is one loop size's outcome.
type Fig9Case struct {
	Hops     int
	Detected bool
	Latency  pathdump.Time
	Rounds   int
	Repeated pathdump.LinkID
}

// Fig9Result reproduces Figure 9 (4-hop loop) and the §4.5 6-hop case.
type Fig9Result struct {
	FourHop Fig9Case
	SixHop  Fig9Case
}

// Fig9 injects a 4-hop loop (agg→core→agg→core within two pods, entered
// on the flow's first up-leg so a single punted header already repeats a
// sampled link) and a 6-hop loop spanning three pods (which needs the
// controller's strip-and-reinject round, §4.5 "detecting loops of any
// size"), and measures detection latency for each.
func Fig9(cfg Fig9Config) *Fig9Result {
	cfg = cfg.withDefaults()
	res := &Fig9Result{}
	res.FourHop = runLoop(cfg, 2)
	res.FourHop.Hops = 4
	res.SixHop = runLoop(cfg, 3)
	res.SixHop.Hops = 6
	return res
}

// runLoop builds a loop through `aggs` aggregation switches (one per pod,
// all in core group 0), entered on the flow's first up-leg, then measures
// detection. With two aggregation switches the cycle is 4 hops
// (agg00→core0→agg10→core1→agg00) and the third tag already repeats a
// sampled link, so one punt suffices; with three it is 6 hops and the
// controller must strip tags and reinject once before the repeat appears.
func runLoop(cfg Fig9Config, aggs int) Fig9Case {
	c := buildCluster(pathdump.NetConfig{PuntDelay: cfg.PuntDelay, Seed: cfg.Seed})
	topo := c.Topo
	hosts := c.HostIDs()
	src := hosts[0]
	// Destination in the last pod, which the loop never reaches.
	dst := hosts[12]
	f := c.FlowBetween(src, dst, 9000)

	ring := make([]types.SwitchID, 0, 2*aggs)
	for i := 0; i < aggs; i++ {
		ring = append(ring, topo.AggID(i, 0), topo.CoreID(i%2))
	}
	// A switch can appear twice in the ring (core0 in the 6-hop case),
	// so the next hop is keyed by ingress, with the first occurrence as
	// the fallback for entry hops and controller reinjection.
	trans := make(map[types.SwitchID]map[netsim.NodeID]types.SwitchID)
	firstNext := make(map[types.SwitchID]types.SwitchID)
	for i, sw := range ring {
		prev := ring[(i-1+len(ring))%len(ring)]
		next := ring[(i+1)%len(ring)]
		m := trans[sw]
		if m == nil {
			m = make(map[netsim.NodeID]types.SwitchID)
			trans[sw] = m
			firstNext[sw] = next
		}
		m[netsim.SwitchNode(prev)] = next
	}
	for sw, m := range trans {
		mCopy, fallback := m, firstNext[sw]
		c.Sim.SetNextHopOverride(sw, func(pkt *netsim.Packet, _ []types.SwitchID, ingress netsim.NodeID) (types.SwitchID, bool) {
			if pkt.Flow != f {
				return 0, false
			}
			if next, ok := mCopy[ingress]; ok {
				return next, true
			}
			return fallback, true
		})
	}
	// Force the source ToR into the loop's entry aggregation switch.
	entry := ring[0]
	c.Sim.SetNextHopOverride(topo.Host(src).ToR, func(pkt *netsim.Packet, _ []types.SwitchID, _ netsim.NodeID) (types.SwitchID, bool) {
		if pkt.Flow != f {
			return 0, false
		}
		return entry, true
	})

	var events []pathdump.LoopEvent
	c.OnLoop(func(ev pathdump.LoopEvent) { events = append(events, ev) })

	start := c.Now()
	if err := c.SendPacket(src, &netsim.Packet{Flow: f, Size: 100}); err != nil {
		panic(err)
	}
	c.RunAll()
	if len(events) == 0 {
		return Fig9Case{}
	}
	ev := events[0]
	return Fig9Case{
		Detected: true,
		Latency:  ev.DetectedAt - start,
		Rounds:   ev.Rounds,
		Repeated: ev.Repeated,
	}
}
