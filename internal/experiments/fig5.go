package experiments

import (
	"pathdump"
	"pathdump/internal/netsim"
	"pathdump/internal/query"
	"pathdump/internal/types"
)

// Fig5Config parameterises the §4.2 ECMP load-imbalance experiment: a
// misconfigured aggregation switch pushes flows ≥ SplitBytes onto uplink
// 1 and the rest onto uplink 2, while web traffic flows from pod 1 to the
// remaining pods. The paper runs 10 minutes at 1 GbE; the default here is
// 60 virtual seconds at 50 Mb/s, which preserves the distributional shape.
type Fig5Config struct {
	LinkBps  int64         // default 50 Mb/s
	Load     float64       // default 0.3
	Duration pathdump.Time // default 60 s
	Window   pathdump.Time // default 5 s (the paper's measurement window)
	Split    int64         // default 1 MB
	BinBytes uint64        // default 10 kB (the paper's binsize)
	Seed     int64
}

func (c Fig5Config) withDefaults() Fig5Config {
	if c.LinkBps == 0 {
		c.LinkBps = 50e6
	}
	if c.Load == 0 {
		c.Load = 0.3
	}
	if c.Duration == 0 {
		c.Duration = 60 * pathdump.Second
	}
	if c.Window == 0 {
		c.Window = 5 * pathdump.Second
	}
	if c.Split == 0 {
		c.Split = 1_000_000
	}
	if c.BinBytes == 0 {
		c.BinBytes = 10_000
	}
	return c
}

// Fig5Window is one measurement window's per-link load.
type Fig5Window struct {
	Start         pathdump.Time
	Link1, Link2  uint64  // bytes on the two uplinks
	ImbalanceRate float64 // λ = (Lmax/L̄−1)·100%
}

// Fig5Result reproduces Figures 5(b) and 5(c).
type Fig5Result struct {
	Flows   int
	Windows []Fig5Window
	Hists   []query.LinkHist // per-uplink flow-size histograms (Fig. 5c)
	Link1   pathdump.LinkID
	Link2   pathdump.LinkID
	// QueryStats is the multi-level query cost of the Fig. 5(c) query.
	QueryStats pathdump.ExecStats
}

// Fig5 runs the experiment.
func Fig5(cfg Fig5Config) *Fig5Result {
	cfg = cfg.withDefaults()
	c := buildCluster(pathdump.NetConfig{BandwidthBps: cfg.LinkBps, Seed: cfg.Seed})
	topo := c.Topo

	// SAgg sits in pod 1 (the paper's Fig. 5a); its two core uplinks are
	// links 1 and 2.
	sAgg := topo.AggID(1, 0)
	link1 := pathdump.LinkID{A: sAgg, B: topo.CoreID(0)}
	link2 := pathdump.LinkID{A: sAgg, B: topo.CoreID(1)}
	split := cfg.Split
	c.Sim.SetNextHopOverride(sAgg, func(pkt *netsim.Packet, canonical []types.SwitchID, _ netsim.NodeID) (types.SwitchID, bool) {
		if len(canonical) < 2 || pkt.Ack {
			return 0, false
		}
		if pkt.Meta >= split {
			return link1.B, true
		}
		return link2.B, true
	})

	srcs, dsts := podHosts(c, 1)
	gen := startWebTraffic(c, srcs, dsts, cfg.Load, cfg.LinkBps, cfg.Duration, cfg.Seed+1)
	c.Run(cfg.Duration + 10*pathdump.Second) // drain evictions

	res := &Fig5Result{Flows: gen.Started, Link1: link1, Link2: link2}

	// Fig. 5(b): imbalance rate per window, from TIB byte counts.
	for t := pathdump.Time(0); t < cfg.Duration; t += cfg.Window {
		tr := pathdump.TimeRange{From: t, To: t + cfg.Window}
		w := Fig5Window{Start: t}
		w.Link1 = linkBytes(c, link1, tr)
		w.Link2 = linkBytes(c, link2, tr)
		w.ImbalanceRate = imbalanceRate(float64(w.Link1), float64(w.Link2))
		res.Windows = append(res.Windows, w)
	}

	// Fig. 5(c): per-link flow-size distribution by multi-level query.
	hists, stats, err := c.FlowSizeDistribution(
		[]pathdump.LinkID{link1, link2}, pathdump.AllTime, cfg.BinBytes, []int{4, 2})
	if err != nil {
		panic(err)
	}
	res.Hists = hists
	res.QueryStats = stats
	return res
}

func linkBytes(c *pathdump.Cluster, l pathdump.LinkID, tr pathdump.TimeRange) uint64 {
	res, _, err := c.Execute(c.HostIDs(), pathdump.Query{Op: pathdump.OpRecords, Link: l, Range: tr})
	if err != nil {
		panic(err)
	}
	var b uint64
	for _, r := range res.Records {
		b += r.Bytes
	}
	return b
}

func imbalanceRate(a, b float64) float64 {
	mean := (a + b) / 2
	if mean == 0 {
		return 0
	}
	max := a
	if b > max {
		max = b
	}
	return (max/mean - 1) * 100
}

// SplitQuality summarises how sharply Fig. 5(c)'s two distributions divide
// around the split point: the fraction of link-1 flows at or above it and
// of link-2 flows below it (both ≈1 when the misconfiguration is exposed).
func (r *Fig5Result) SplitQuality(split uint64) (big1, small2 float64) {
	frac := func(h query.LinkHist, above bool) float64 {
		var hit, total uint64
		for i, cnt := range h.Bins {
			total += cnt
			lo := uint64(i) * h.BinBytes
			if above == (lo >= split-h.BinBytes) { // bin straddling the split counts as above
				hit += cnt
			}
		}
		if total == 0 {
			return 0
		}
		return float64(hit) / float64(total)
	}
	for _, h := range r.Hists {
		switch h.Link {
		case r.Link1:
			big1 = frac(h, true)
		case r.Link2:
			small2 = frac(h, false)
		}
	}
	return big1, small2
}
