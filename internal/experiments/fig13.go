package experiments

import (
	"math/rand"
	"time"

	"pathdump/internal/agent"
	"pathdump/internal/cherrypick"
	"pathdump/internal/netsim"
	"pathdump/internal/topology"
	"pathdump/internal/types"
)

// Fig13 measures the edge-datapath forwarding throughput (§5.3, Fig. 13):
// the PathDump receive path (header parse + trajectory extraction +
// per-path flow record update + tag strip) against a vanilla vSwitch
// receive path (header parse + flow-table update + packet copy), across
// packet sizes, with ~4 000 hot flow records in the trajectory memory —
// the paper's load point (≈100 K flows/s at a rack of 24 hosts).
//
// The paper's absolute numbers (up to 10 Gb/s over DPDK) include NIC and
// memory-ring costs that do not exist in-process; the preserved shape is
// (a) per-packet cost nearly flat in packet size, so bits/s grows linearly
// with size while packets/s falls, and (b) PathDump's overhead atop the
// vanilla path being a small fraction that shrinks as packets grow.

// Fig13Config parameterises the microbenchmark.
type Fig13Config struct {
	Sizes   []int // default {64, 128, 256, 512, 1024, 1500}
	Packets int   // packets per measurement (default 300 000)
	Flows   int   // hot flows (default 4 000)
	Seed    int64
}

func (c Fig13Config) withDefaults() Fig13Config {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{64, 128, 256, 512, 1024, 1500}
	}
	if c.Packets == 0 {
		c.Packets = 300_000
	}
	if c.Flows == 0 {
		c.Flows = 4_000
	}
	return c
}

// Fig13Row is one packet size's measurement.
type Fig13Row struct {
	Size                      int
	PathDumpMpps, VanillaMpps float64
	PathDumpGbps, VanillaGbps float64
	OverheadPct               float64 // throughput loss vs vanilla
}

// Fig13Result reproduces Figure 13.
type Fig13Result struct {
	Rows []Fig13Row
}

// DatapathBench is the reusable harness shared with bench_test.go.
type DatapathBench struct {
	Agent   *agent.Agent
	Packets []*netsim.Packet
	// flowTable emulates the vanilla vSwitch's per-flow state.
	flowTable map[types.FlowID]uint64
	buf       []byte
}

// NewDatapathBench builds an agent on a quiescent simulator plus a ring
// of pre-tagged packets of the given size across `flows` hot flows.
func NewDatapathBench(size, flows int, seed int64) *DatapathBench {
	topo, err := topology.FatTree(4)
	if err != nil {
		panic(err)
	}
	scheme, err := cherrypick.New(topo)
	if err != nil {
		panic(err)
	}
	sim := netsim.New(topo, scheme, netsim.Config{Seed: seed})
	dst := topo.Hosts()[0]
	a := agent.New(sim, dst, nil, nil, agent.Config{CacheSize: flows * 2})

	rng := rand.New(rand.NewSource(seed))
	r := topology.NewRouter(topo)
	hosts := topo.Hosts()
	pkts := make([]*netsim.Packet, flows)
	for i := range pkts {
		src := hosts[1+rng.Intn(len(hosts)-1)]
		f := types.FlowID{
			SrcIP: src.IP, DstIP: dst.IP,
			SrcPort: uint16(1024 + i), DstPort: 80, Proto: types.ProtoTCP,
		}
		paths := r.EqualCostPaths(src.IP, dst.IP)
		p := paths[rng.Intn(len(paths))]
		hdr := cherrypick.ApplyPath(scheme, p, dst.IP)
		pkts[i] = &netsim.Packet{Flow: f, Size: size, Hdr: hdr}
	}
	return &DatapathBench{
		Agent:     a,
		Packets:   pkts,
		flowTable: make(map[types.FlowID]uint64, flows),
		buf:       make([]byte, 1500),
	}
}

// VanillaOne processes one packet the way a plain software switch would:
// five-tuple lookup/update plus moving the payload.
func (d *DatapathBench) VanillaOne(i int) {
	pkt := d.Packets[i%len(d.Packets)]
	d.flowTable[pkt.Flow] += uint64(pkt.Size)
	// Move the payload once (receive-ring → host buffer).
	n := pkt.Size
	if n > len(d.buf) {
		n = len(d.buf)
	}
	copy(d.buf[:n], d.buf[len(d.buf)-n:])
}

// PathDumpOne is VanillaOne plus the PathDump datapath: trajectory
// extraction, per-path flow record update, tag strip.
func (d *DatapathBench) PathDumpOne(i int) {
	pkt := d.Packets[i%len(d.Packets)]
	d.VanillaOne(i)
	hdr := pkt.Hdr // Receive strips the header; restore for the next lap
	d.Agent.Receive(pkt)
	pkt.Hdr = hdr
}

// Fig13 runs the measurement.
func Fig13(cfg Fig13Config) *Fig13Result {
	cfg = cfg.withDefaults()
	res := &Fig13Result{}
	for _, size := range cfg.Sizes {
		d := NewDatapathBench(size, cfg.Flows, cfg.Seed)
		// Warm both paths.
		for i := 0; i < cfg.Flows; i++ {
			d.PathDumpOne(i)
		}
		start := time.Now()
		for i := 0; i < cfg.Packets; i++ {
			d.VanillaOne(i)
		}
		vanilla := time.Since(start)

		start = time.Now()
		for i := 0; i < cfg.Packets; i++ {
			d.PathDumpOne(i)
		}
		pd := time.Since(start)

		row := Fig13Row{Size: size}
		row.VanillaMpps = float64(cfg.Packets) / vanilla.Seconds() / 1e6
		row.PathDumpMpps = float64(cfg.Packets) / pd.Seconds() / 1e6
		row.VanillaGbps = row.VanillaMpps * float64(size) * 8 / 1e3
		row.PathDumpGbps = row.PathDumpMpps * float64(size) * 8 / 1e3
		row.OverheadPct = (1 - row.PathDumpMpps/row.VanillaMpps) * 100
		res.Rows = append(res.Rows, row)
	}
	return res
}
