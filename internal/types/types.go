// Package types defines the identifiers and records shared by every
// PathDump component: switch/host/link identifiers, five-tuple flow IDs,
// packet trajectories, time ranges with wildcard semantics, header tags,
// and TIB (Trajectory Information Base) records.
//
// The definitions follow §2.1 of the paper:
//
//   - a linkID is a pair of adjacent switchIDs ⟨Si, Sj⟩;
//   - a Path is a list of switchIDs ⟨Si, Sj, ...⟩;
//   - a flowID is the usual 5-tuple ⟨srcIP, dstIP, srcPort, dstPort, proto⟩;
//   - a Flow is a ⟨flowID, Path⟩ pair;
//   - a timeRange is a pair of timestamps ⟨ti, tj⟩;
//
// with wildcard entries allowed for switchIDs and timestamps.
package types

import (
	"fmt"
	"strings"
)

// SwitchID identifies a network switch. Switch identifiers are assigned
// statically when the topology is built and never change afterwards; the
// "ground truth" topology stored at every edge device maps them back to
// physical positions.
type SwitchID uint16

// WildcardSwitch matches any switch in a LinkID ("?" in the paper's
// notation, e.g. ⟨?, Sj⟩ means all incoming links of Sj).
const WildcardSwitch SwitchID = 0xFFFF

// IsWildcard reports whether s is the wildcard switch identifier.
func (s SwitchID) IsWildcard() bool { return s == WildcardSwitch }

// String renders the switch ID, using "*" for the wildcard.
func (s SwitchID) String() string {
	if s.IsWildcard() {
		return "*"
	}
	return fmt.Sprintf("s%d", uint16(s))
}

// HostID identifies an end-host (edge device). Each host runs one PathDump
// agent and owns the TIB shard for flows destined to it.
type HostID uint32

// String renders the host ID.
func (h HostID) String() string { return fmt.Sprintf("h%d", uint32(h)) }

// IP is an IPv4 address in host byte order. The simulator assigns each host
// a unique address; the paper's agents key "local" flows by dstIP.
type IP uint32

// String renders the address in dotted-quad form.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Protocol numbers used by the flow generator and the monitoring module.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// FlowID is the usual five-tuple.
type FlowID struct {
	SrcIP   IP
	DstIP   IP
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// String renders the five-tuple.
func (f FlowID) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%d", f.SrcIP, f.SrcPort, f.DstIP, f.DstPort, f.Proto)
}

// Reverse returns the flow ID of the opposite direction (used for ACKs).
func (f FlowID) Reverse() FlowID {
	return FlowID{
		SrcIP: f.DstIP, DstIP: f.SrcIP,
		SrcPort: f.DstPort, DstPort: f.SrcPort,
		Proto: f.Proto,
	}
}

// LinkID is a pair of adjacent switch IDs. Either side may be
// WildcardSwitch: ⟨?, Sj⟩ is interpreted as all incoming links of Sj and
// ⟨Si, ?⟩ as all outgoing links of Si; ⟨?, ?⟩ matches every link.
type LinkID struct {
	A, B SwitchID
}

// AnyLink matches every link.
var AnyLink = LinkID{WildcardSwitch, WildcardSwitch}

// IsWildcard reports whether either endpoint is a wildcard.
func (l LinkID) IsWildcard() bool { return l.A.IsWildcard() || l.B.IsWildcard() }

// Matches reports whether the concrete link other is selected by l,
// honouring wildcards on either side of l.
func (l LinkID) Matches(other LinkID) bool {
	return (l.A.IsWildcard() || l.A == other.A) && (l.B.IsWildcard() || l.B == other.B)
}

// String renders the link as "sA-sB".
func (l LinkID) String() string { return l.A.String() + "-" + l.B.String() }

// Path is an ordered list of switch IDs traversed by a packet, from the
// switch adjacent to the source host to the switch adjacent to the
// destination host.
type Path []SwitchID

// String renders the path as "s0>s4>s8".
func (p Path) String() string {
	if len(p) == 0 {
		return "<empty>"
	}
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = s.String()
	}
	return strings.Join(parts, ">")
}

// Equal reports whether two paths are identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Contains reports whether the path visits switch s.
func (p Path) Contains(s SwitchID) bool {
	for _, x := range p {
		if x == s {
			return true
		}
	}
	return false
}

// ContainsLink reports whether the path traverses the directed link l,
// honouring wildcards in l.
func (p Path) ContainsLink(l LinkID) bool {
	for i := 0; i+1 < len(p); i++ {
		if l.Matches(LinkID{p[i], p[i+1]}) {
			return true
		}
	}
	return false
}

// Links returns the directed links along the path.
func (p Path) Links() []LinkID {
	if len(p) < 2 {
		return nil
	}
	out := make([]LinkID, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		out = append(out, LinkID{p[i], p[i+1]})
	}
	return out
}

// Clone returns a copy of the path.
func (p Path) Clone() Path {
	q := make(Path, len(p))
	copy(q, p)
	return q
}

// Key returns a compact string key for maps.
func (p Path) Key() string {
	var b strings.Builder
	b.Grow(len(p) * 3)
	for _, s := range p {
		b.WriteByte(byte(s >> 8))
		b.WriteByte(byte(s))
	}
	return b.String()
}

// Flow pairs a flow ID with one of the paths its packets traversed.
// Packets of a single flowID may traverse multiple Paths (ECMP re-hash,
// packet spraying, failover), so a flowID maps to one or more Flows.
type Flow struct {
	ID   FlowID
	Path Path
}

// Time is virtual time in nanoseconds since the start of the simulation.
// Agents and the controller exchange Time values; there is no wall clock
// anywhere in the data path so experiments are deterministic.
type Time int64

// Common time units expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// TimeEnd is the wildcard upper bound ("since ti" queries use ⟨ti, ?⟩).
const TimeEnd Time = 1<<63 - 1

// String renders the time in seconds.
func (t Time) String() string { return fmt.Sprintf("%.6fs", float64(t)/float64(Second)) }

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// TimeRange is a pair of timestamps ⟨From, To⟩, inclusive on both ends.
// From==0 means "since the beginning"; To==TimeEnd means "until now".
type TimeRange struct {
	From, To Time
}

// AllTime matches every timestamp.
var AllTime = TimeRange{0, TimeEnd}

// Since returns the range ⟨t, ?⟩.
func Since(t Time) TimeRange { return TimeRange{t, TimeEnd} }

// Overlaps reports whether [r.From, r.To] intersects [from, to].
func (r TimeRange) Overlaps(from, to Time) bool {
	return from <= r.To && to >= r.From
}

// Contains reports whether t lies inside the range.
func (r TimeRange) Contains(t Time) bool { return t >= r.From && t <= r.To }

// String renders the range.
func (r TimeRange) String() string {
	to := "*"
	if r.To != TimeEnd {
		to = r.To.String()
	}
	return fmt.Sprintf("[%s,%s]", r.From, to)
}

// TagKind distinguishes the header fields used to carry sampled link IDs.
type TagKind uint8

// Header fields usable for trajectory information (§3.1).
const (
	// TagVLAN is a 12-bit VLAN identifier. Commodity ASICs parse at most
	// two stacked VLAN tags (QinQ) at line rate; a third forces a rule
	// miss and the packet is punted to the controller.
	TagVLAN TagKind = iota
	// TagDSCP is the 6-bit DSCP field, used by the VL2 scheme to sample
	// the ToR→aggregate link before spending VLAN tags.
	TagDSCP
)

// Tag is one sampled-link identifier carried in a packet header.
type Tag struct {
	Kind  TagKind
	Value uint16 // 12 bits for VLAN, 6 bits for DSCP
}

// String renders the tag.
func (t Tag) String() string {
	switch t.Kind {
	case TagVLAN:
		return fmt.Sprintf("vlan:%d", t.Value)
	case TagDSCP:
		return fmt.Sprintf("dscp:%d", t.Value)
	}
	return fmt.Sprintf("tag(%d):%d", t.Kind, t.Value)
}

// MaxVLANTags is the number of stacked VLAN tags a commodity switch ASIC
// parses at line rate (QinQ). Exceeding it punts the packet to the
// controller — the mechanism PathDump leverages to trap suspiciously long
// paths and routing loops (§3.1, §4.5).
const MaxVLANTags = 2

// VLANBits is the width of a VLAN identifier and LinkIDSpace the number of
// distinct global link IDs it can carry (4096 in the paper).
const (
	VLANBits    = 12
	LinkIDSpace = 1 << VLANBits
	DSCPBits    = 6
	DSCPSpace   = 1 << DSCPBits
)

// Record is one TIB entry: statistics for packets of one flow that
// traversed one path — ⟨flow ID, path, stime, etime, #bytes, #pkts⟩
// exactly as in Figure 2 of the paper.
type Record struct {
	Flow  FlowID
	Path  Path
	STime Time
	ETime Time
	Bytes uint64
	Pkts  uint64
}

// Overlaps reports whether the record's active interval intersects r.
func (rec *Record) Overlaps(r TimeRange) bool { return r.Overlaps(rec.STime, rec.ETime) }

// Duration is the record's active time span.
func (rec *Record) Duration() Time { return rec.ETime - rec.STime }

// String renders the record compactly.
func (rec *Record) String() string {
	return fmt.Sprintf("%s via %s %s..%s %dB/%dpkts",
		rec.Flow, rec.Path, rec.STime, rec.ETime, rec.Bytes, rec.Pkts)
}

// Reason codes attached to Alarm() calls (§2.1).
type Reason string

// Alarm reasons used by the monitoring module and debugging applications.
const (
	ReasonPoorPerf        Reason = "POOR_PERF"          // TCP performance alert
	ReasonPathConformance Reason = "PC_FAIL"            // path conformance violation
	ReasonLongPath        Reason = "LONG_PATH"          // suspiciously long path trapped in-network
	ReasonLoop            Reason = "LOOP"               // routing loop detected
	ReasonInvalidTraj     Reason = "INVALID_TRAJECTORY" // trajectory inconsistent with topology ground truth
	ReasonSprayImbalance  Reason = "SPRAY_IMBALANCE"    // uneven subflow split under packet spraying
	ReasonPolarized       Reason = "ECMP_POLARIZED"     // degenerate ECMP hashing concentrates flows on one equal-cost link
	ReasonIncast          Reason = "INCAST"             // synchronized many-to-one microburst at a receiver
	ReasonDDoS            Reason = "DDOS_SUSPECT"       // traffic concentration from many sources at a victim
)

// Alarm is raised by an agent toward the controller: a flow, a reason code,
// and the list of paths implicated (§2.1 Alarm(flowID, Reason, Paths)).
type Alarm struct {
	Host   HostID
	Flow   FlowID
	Reason Reason
	Paths  []Path
	At     Time
}

// String renders the alarm.
func (a Alarm) String() string {
	return fmt.Sprintf("[%s] %s %s (%d paths) at %s", a.Reason, a.Host, a.Flow, len(a.Paths), a.At)
}
