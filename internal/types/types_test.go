package types

import (
	"testing"
	"testing/quick"
)

func TestSwitchIDString(t *testing.T) {
	if got := SwitchID(7).String(); got != "s7" {
		t.Errorf("SwitchID(7) = %q, want s7", got)
	}
	if got := WildcardSwitch.String(); got != "*" {
		t.Errorf("wildcard = %q, want *", got)
	}
}

func TestIPString(t *testing.T) {
	if got := IP(0x0A000102).String(); got != "10.0.1.2" {
		t.Errorf("IP = %q, want 10.0.1.2", got)
	}
}

func TestFlowIDReverse(t *testing.T) {
	f := FlowID{SrcIP: 1, DstIP: 2, SrcPort: 30, DstPort: 40, Proto: ProtoTCP}
	r := f.Reverse()
	if r.SrcIP != 2 || r.DstIP != 1 || r.SrcPort != 40 || r.DstPort != 30 {
		t.Errorf("Reverse = %+v", r)
	}
	if rr := r.Reverse(); rr != f {
		t.Errorf("double reverse = %+v, want %+v", rr, f)
	}
}

func TestFlowIDReverseInvolution(t *testing.T) {
	f := func(a, b uint32, sp, dp uint16, pr uint8) bool {
		id := FlowID{IP(a), IP(b), sp, dp, pr}
		return id.Reverse().Reverse() == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkIDMatches(t *testing.T) {
	tests := []struct {
		pat, link LinkID
		want      bool
	}{
		{LinkID{1, 2}, LinkID{1, 2}, true},
		{LinkID{1, 2}, LinkID{2, 1}, false},
		{LinkID{WildcardSwitch, 2}, LinkID{9, 2}, true},
		{LinkID{WildcardSwitch, 2}, LinkID{9, 3}, false},
		{LinkID{1, WildcardSwitch}, LinkID{1, 77}, true},
		{AnyLink, LinkID{5, 6}, true},
	}
	for _, tt := range tests {
		if got := tt.pat.Matches(tt.link); got != tt.want {
			t.Errorf("%v.Matches(%v) = %v, want %v", tt.pat, tt.link, got, tt.want)
		}
	}
}

func TestPathBasics(t *testing.T) {
	p := Path{1, 2, 3}
	if !p.Equal(Path{1, 2, 3}) {
		t.Error("Equal failed on identical paths")
	}
	if p.Equal(Path{1, 2}) || p.Equal(Path{1, 2, 4}) {
		t.Error("Equal matched different paths")
	}
	if !p.Contains(2) || p.Contains(9) {
		t.Error("Contains wrong")
	}
	if !p.ContainsLink(LinkID{2, 3}) {
		t.Error("ContainsLink missed 2-3")
	}
	if p.ContainsLink(LinkID{3, 2}) {
		t.Error("ContainsLink matched reversed link")
	}
	if !p.ContainsLink(LinkID{WildcardSwitch, 3}) {
		t.Error("ContainsLink missed wildcard match")
	}
	links := p.Links()
	if len(links) != 2 || links[0] != (LinkID{1, 2}) || links[1] != (LinkID{2, 3}) {
		t.Errorf("Links = %v", links)
	}
	q := p.Clone()
	q[0] = 99
	if p[0] == 99 {
		t.Error("Clone aliases the original")
	}
}

func TestPathKeyUniqueness(t *testing.T) {
	seen := map[string]Path{}
	paths := []Path{{}, {1}, {1, 2}, {2, 1}, {1, 2, 3}, {258}, {1, 515}}
	for _, p := range paths {
		k := p.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision between %v and %v", prev, p)
		}
		seen[k] = p
	}
}

func TestPathKeyInjectiveProperty(t *testing.T) {
	f := func(a, b []uint16) bool {
		pa, pb := make(Path, len(a)), make(Path, len(b))
		for i, v := range a {
			pa[i] = SwitchID(v)
		}
		for i, v := range b {
			pb[i] = SwitchID(v)
		}
		if pa.Equal(pb) {
			return pa.Key() == pb.Key()
		}
		return pa.Key() != pb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeRange(t *testing.T) {
	r := TimeRange{100, 200}
	if !r.Overlaps(150, 300) || !r.Overlaps(0, 100) || !r.Overlaps(200, 500) {
		t.Error("Overlaps missed intersecting ranges")
	}
	if r.Overlaps(201, 300) || r.Overlaps(0, 99) {
		t.Error("Overlaps matched disjoint ranges")
	}
	if !r.Contains(100) || !r.Contains(200) || r.Contains(99) || r.Contains(201) {
		t.Error("Contains wrong")
	}
	if !AllTime.Contains(0) || !AllTime.Contains(TimeEnd) {
		t.Error("AllTime should contain everything")
	}
	s := Since(500)
	if s.Contains(499) || !s.Contains(500) || !s.Contains(TimeEnd) {
		t.Error("Since wrong")
	}
}

func TestRecordOverlapDuration(t *testing.T) {
	rec := Record{STime: 10, ETime: 30}
	if !rec.Overlaps(TimeRange{0, 10}) || !rec.Overlaps(TimeRange{30, 40}) {
		t.Error("Overlaps at boundaries failed")
	}
	if rec.Overlaps(TimeRange{31, 40}) {
		t.Error("Overlaps matched disjoint range")
	}
	if rec.Duration() != 20 {
		t.Errorf("Duration = %d, want 20", rec.Duration())
	}
}

func TestTagString(t *testing.T) {
	if got := (Tag{TagVLAN, 42}).String(); got != "vlan:42" {
		t.Errorf("tag = %q", got)
	}
	if got := (Tag{TagDSCP, 5}).String(); got != "dscp:5" {
		t.Errorf("tag = %q", got)
	}
}

func TestTimeSeconds(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds = %v", got)
	}
	if (500 * Millisecond).Seconds() != 0.5 {
		t.Error("millisecond conversion wrong")
	}
}
