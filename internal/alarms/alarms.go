// Package alarms is the controller-side alarm pipeline of the
// continuous-monitoring plane: every alarm an agent raises (§2.1's
// Alarm(flowID, Reason, Paths)) flows through one Pipeline, which
//
//   - keeps a bounded ring-buffer history with monotone entry IDs — the
//     previous unbounded append-only log is gone; an alarm storm costs a
//     fixed amount of memory, never more;
//   - deduplicates: repeated firings of the same ⟨host, flow, reason⟩
//     within the suppression window fold into the earlier entry
//     (Count/LastAt updated) instead of producing new entries — an
//     installed monitor firing every 200 ms yields one alarm, not 300/min;
//   - rate-limits: a global token bucket caps how many distinct new
//     entries per second the pipeline admits, so a misbehaving fleet
//     cannot melt the controller;
//   - serves filterable history queries (by entry ID, reason, host, time
//     range) and live subscriptions — the data behind GET /alarms and
//     GET /alarms/stream;
//   - counts everything (Stats), ExecStats-style.
//
// All methods are safe for concurrent use; Publish never blocks on a slow
// subscriber (their channel drops and the drop is counted).
package alarms

import (
	"math"
	"sync"
	"time"

	"pathdump/internal/types"
)

// DefaultHistory is the default ring-buffer capacity.
const DefaultHistory = 4096

// Config parameterises a Pipeline. The zero value keeps every alarm
// distinct (no suppression, no rate limit) in a DefaultHistory-deep ring.
type Config struct {
	// History is the ring-buffer capacity: the newest History entries are
	// queryable; older ones fall off (<= 0 selects DefaultHistory).
	History int
	// Suppress is the dedup window: a firing of the same
	// ⟨host, flow, reason⟩ within Suppress of the key's previous firing
	// folds into the existing entry instead of creating a new one. The
	// window is sliding — a monitor firing every 200 ms under a 5 s window
	// folds forever, not once per 5 s. 0 disables dedup.
	Suppress time.Duration
	// Rate caps distinct new entries per second through a token bucket
	// (suppressed repeats are not charged); 0 = unlimited.
	Rate float64
	// Burst is the bucket depth (default max(1, ceil(Rate))).
	Burst int
	// Now is the pipeline clock, injectable for tests (default time.Now).
	// Suppression and rate limiting run on receipt (wall) time: agents
	// across a deployment stamp Alarm.At from their own virtual clocks,
	// which are not comparable.
	Now func() time.Time
}

// Entry is one admitted alarm in the history ring.
type Entry struct {
	// ID is the entry's monotone identity (1-based): streams resume and
	// history queries page by it.
	ID uint64 `json:"id"`
	// Alarm is the first firing's payload.
	Alarm types.Alarm `json:"alarm"`
	// Count is how many firings folded into this entry (1 = never
	// deduplicated).
	Count int `json:"count"`
	// FirstAt/LastAt bracket the firings' receipt times.
	FirstAt time.Time `json:"first_at"`
	LastAt  time.Time `json:"last_at"`
}

// Stats counts the pipeline's traffic.
type Stats struct {
	// Received counts every Publish call.
	Received uint64 `json:"received"`
	// Admitted counts new history entries (distinct alarms).
	Admitted uint64 `json:"admitted"`
	// Suppressed counts firings folded into an existing entry by the
	// dedup window.
	Suppressed uint64 `json:"suppressed"`
	// RateLimited counts distinct alarms refused by the token bucket
	// (they do not enter history).
	RateLimited uint64 `json:"rate_limited"`
	// StreamDropped counts entries a slow subscriber's buffer discarded.
	StreamDropped uint64 `json:"stream_dropped"`
	// Subscribers is the current live subscription count.
	Subscribers int `json:"subscribers"`
	// Evicted counts entries that fell off the ring.
	Evicted uint64 `json:"evicted"`
}

// Filter selects history entries. The zero value selects everything.
type Filter struct {
	// SinceID selects entries with ID > SinceID.
	SinceID uint64
	// Reason, when non-empty, selects that reason only.
	Reason types.Reason
	// Host, when non-nil, selects that host only.
	Host *types.HostID
	// From/To, when non-zero, bound the entries' LastAt receipt time.
	From, To time.Time
	// Limit caps the result length, keeping the newest matches (0 = all).
	Limit int
}

// Matches reports whether an entry passes the filter (Limit aside). The
// streaming endpoint applies it to live entries as they arrive.
func (f Filter) Matches(e *Entry) bool {
	if e.ID <= f.SinceID {
		return false
	}
	if f.Reason != "" && e.Alarm.Reason != f.Reason {
		return false
	}
	if f.Host != nil && e.Alarm.Host != *f.Host {
		return false
	}
	if !f.From.IsZero() && e.LastAt.Before(f.From) {
		return false
	}
	if !f.To.IsZero() && e.LastAt.After(f.To) {
		return false
	}
	return true
}

// dedupKey identifies a suppressible alarm.
type dedupKey struct {
	host   types.HostID
	flow   types.FlowID
	reason types.Reason
}

// Pipeline routes alarms: dedup → rate limit → ring history + live
// subscribers.
type Pipeline struct {
	cfg Config

	mu      sync.Mutex
	ring    []Entry // ring[(id-1) % cap] holds entry id while it survives
	nextID  uint64  // next entry ID to assign (last assigned = nextID-1)
	lastKey map[dedupKey]uint64
	subs    map[*Subscription]struct{}
	stats   Stats

	tokens     float64
	lastRefill time.Time
}

// New builds a pipeline.
func New(cfg Config) *Pipeline {
	if cfg.History <= 0 {
		cfg.History = DefaultHistory
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Rate > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(math.Ceil(cfg.Rate))
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	return &Pipeline{
		cfg:        cfg,
		ring:       make([]Entry, 0, cfg.History),
		nextID:     1,
		lastKey:    make(map[dedupKey]uint64),
		subs:       make(map[*Subscription]struct{}),
		tokens:     float64(cfg.Burst),
		lastRefill: cfg.Now(),
	}
}

// slot returns the ring entry for id, or nil once it has fallen off.
// Caller holds p.mu.
func (p *Pipeline) slot(id uint64) *Entry {
	if id == 0 || id >= p.nextID {
		return nil
	}
	e := &p.ring[(id-1)%uint64(cap(p.ring))]
	if e.ID != id {
		return nil // overwritten by a newer entry
	}
	return e
}

// Publish routes one alarm through dedup, rate limiting, history and the
// live subscribers. It reports whether the alarm was admitted as a new
// entry; a suppressed repeat returns the entry it folded into (with
// admitted == false), and a rate-limited alarm returns a zero Entry.
func (p *Pipeline) Publish(a types.Alarm) (e Entry, admitted bool) {
	now := p.cfg.Now()
	p.mu.Lock()
	p.stats.Received++

	// Dedup: fold into a live same-key entry within the sliding window.
	key := dedupKey{host: a.Host, flow: a.Flow, reason: a.Reason}
	if p.cfg.Suppress > 0 {
		if prev := p.slot(p.lastKey[key]); prev != nil && now.Sub(prev.LastAt) <= p.cfg.Suppress {
			prev.Count++
			prev.LastAt = now
			p.stats.Suppressed++
			e = *prev
			p.mu.Unlock()
			return e, false
		}
	}

	// Rate limit distinct new entries.
	if p.cfg.Rate > 0 {
		p.tokens += now.Sub(p.lastRefill).Seconds() * p.cfg.Rate
		if max := float64(p.cfg.Burst); p.tokens > max {
			p.tokens = max
		}
		p.lastRefill = now
		if p.tokens < 1 {
			p.stats.RateLimited++
			p.mu.Unlock()
			return Entry{}, false
		}
		p.tokens--
	}

	e = Entry{ID: p.nextID, Alarm: a, Count: 1, FirstAt: now, LastAt: now}
	p.nextID++
	if len(p.ring) < cap(p.ring) {
		p.ring = append(p.ring, e)
	} else {
		// Overwrite the oldest slot; its key mapping dies with it (slot()
		// checks the stored ID, so no map cleanup is needed).
		p.ring[(e.ID-1)%uint64(cap(p.ring))] = e
		p.stats.Evicted++
	}
	if p.cfg.Suppress > 0 {
		p.lastKey[key] = e.ID
		// Bound the dedup map alongside the ring: keys whose entries fell
		// off can never fold again, so sweep them once enough garbage
		// accrues.
		if len(p.lastKey) > 2*cap(p.ring) {
			for k, id := range p.lastKey {
				if p.slot(id) == nil {
					delete(p.lastKey, k)
				}
			}
		}
	}
	p.stats.Admitted++
	for sub := range p.subs {
		select {
		case sub.ch <- e:
		default:
			sub.dropped++
			p.stats.StreamDropped++
		}
	}
	p.mu.Unlock()
	return e, true
}

// History returns the entries matching the filter, oldest first. Entries
// are copies: a later fold updates the pipeline, not the returned slice.
func (p *Pipeline) History(f Filter) []Entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Entry
	first := uint64(1)
	if p.nextID > uint64(len(p.ring)) {
		first = p.nextID - uint64(len(p.ring))
	}
	for id := first; id < p.nextID; id++ {
		if e := p.slot(id); e != nil && f.Matches(e) {
			out = append(out, *e)
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Stats returns a snapshot of the pipeline counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Subscribers = len(p.subs)
	return s
}

// Subscription is one live alarm feed. Entries arrive on C in admission
// order; when the subscriber's buffer is full the newest entry is dropped
// (and counted) rather than blocking the pipeline.
type Subscription struct {
	p       *Pipeline
	ch      chan Entry
	dropped uint64
	closed  bool
}

// Subscribe registers a live feed with the given channel buffer
// (<= 0 selects 64). Callers must drain C and Close when done.
func (p *Pipeline) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = 64
	}
	sub := &Subscription{p: p, ch: make(chan Entry, buf)}
	p.mu.Lock()
	p.subs[sub] = struct{}{}
	p.mu.Unlock()
	return sub
}

// C is the subscription's feed.
func (s *Subscription) C() <-chan Entry { return s.ch }

// Dropped reports how many entries this subscription's buffer discarded.
func (s *Subscription) Dropped() uint64 {
	s.p.mu.Lock()
	defer s.p.mu.Unlock()
	return s.dropped
}

// Close detaches the subscription and closes its channel (drain-safe:
// publishes happen under the same lock, so no send can race the close).
func (s *Subscription) Close() {
	s.p.mu.Lock()
	defer s.p.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	delete(s.p.subs, s)
	close(s.ch)
}
