package alarms

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"pathdump/internal/types"
)

// fakeClock is an injectable pipeline clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func alarm(host int, port uint16, reason types.Reason) types.Alarm {
	return types.Alarm{
		Host:   types.HostID(host),
		Flow:   types.FlowID{SrcIP: 10, DstIP: 20, SrcPort: port, DstPort: 80, Proto: 6},
		Reason: reason,
	}
}

func TestDedupFoldsRepeats(t *testing.T) {
	clk := newFakeClock()
	p := New(Config{Suppress: 5 * time.Second, Now: clk.Now})

	if _, admitted := p.Publish(alarm(1, 100, types.ReasonPoorPerf)); !admitted {
		t.Fatal("first firing not admitted")
	}
	// 30 repeats inside the (sliding) window: all fold.
	for i := 0; i < 30; i++ {
		clk.Advance(200 * time.Millisecond)
		if e, admitted := p.Publish(alarm(1, 100, types.ReasonPoorPerf)); admitted {
			t.Fatalf("repeat %d admitted as new entry %d", i, e.ID)
		}
	}
	hist := p.History(Filter{})
	if len(hist) != 1 {
		t.Fatalf("history has %d entries, want 1", len(hist))
	}
	if hist[0].Count != 31 {
		t.Fatalf("entry folded %d firings, want 31", hist[0].Count)
	}
	if st := p.Stats(); st.Received != 31 || st.Admitted != 1 || st.Suppressed != 30 {
		t.Fatalf("stats = %+v", st)
	}

	// A different flow, host, or reason is never suppressed.
	if _, admitted := p.Publish(alarm(1, 101, types.ReasonPoorPerf)); !admitted {
		t.Fatal("different flow suppressed")
	}
	if _, admitted := p.Publish(alarm(2, 100, types.ReasonPoorPerf)); !admitted {
		t.Fatal("different host suppressed")
	}
	if _, admitted := p.Publish(alarm(1, 100, types.ReasonPathConformance)); !admitted {
		t.Fatal("different reason suppressed")
	}

	// Past the window the same key is a fresh entry again.
	clk.Advance(6 * time.Second)
	if _, admitted := p.Publish(alarm(1, 100, types.ReasonPoorPerf)); !admitted {
		t.Fatal("post-window firing suppressed")
	}
	if got := len(p.History(Filter{Reason: types.ReasonPoorPerf})); got != 4 {
		t.Fatalf("POOR_PERF entries = %d, want 4", got)
	}
}

func TestRateLimit(t *testing.T) {
	clk := newFakeClock()
	p := New(Config{Rate: 2, Burst: 2, Now: clk.Now})

	admitted := 0
	for i := 0; i < 10; i++ {
		if _, ok := p.Publish(alarm(1, uint16(i), types.ReasonPoorPerf)); ok {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("burst admitted %d, want 2", admitted)
	}
	if st := p.Stats(); st.RateLimited != 8 {
		t.Fatalf("rate-limited %d, want 8", st.RateLimited)
	}
	// Tokens refill with time.
	clk.Advance(time.Second)
	if _, ok := p.Publish(alarm(1, 50, types.ReasonPoorPerf)); !ok {
		t.Fatal("refilled bucket still refused")
	}
	// Suppressed repeats are not charged against the bucket.
	clk2 := newFakeClock()
	p2 := New(Config{Suppress: time.Minute, Rate: 1, Burst: 1, Now: clk2.Now})
	p2.Publish(alarm(1, 1, types.ReasonPoorPerf))
	for i := 0; i < 5; i++ {
		clk2.Advance(time.Millisecond)
		if _, admitted := p2.Publish(alarm(1, 1, types.ReasonPoorPerf)); admitted {
			t.Fatal("repeat admitted as new")
		}
	}
	if st := p2.Stats(); st.RateLimited != 0 || st.Suppressed != 5 {
		t.Fatalf("stats = %+v, want 5 suppressed / 0 rate-limited", st)
	}
}

// TestRingBounded is the alarm-storm regression: history memory is capped
// at the configured depth no matter how many alarms arrive.
func TestRingBounded(t *testing.T) {
	p := New(Config{History: 64})
	const storm = 50_000
	for i := 0; i < storm; i++ {
		p.Publish(types.Alarm{
			Host:   types.HostID(i % 97),
			Flow:   types.FlowID{SrcIP: types.IP(i), SrcPort: uint16(i), DstPort: 80, Proto: 6},
			Reason: types.ReasonPoorPerf,
		})
	}
	hist := p.History(Filter{})
	if len(hist) != 64 {
		t.Fatalf("history holds %d entries after a %d-alarm storm, want 64", len(hist), storm)
	}
	// The survivors are the newest, in order.
	for i, e := range hist {
		if want := uint64(storm - 64 + 1 + i); e.ID != want {
			t.Fatalf("entry %d has ID %d, want %d", i, e.ID, want)
		}
	}
	st := p.Stats()
	if st.Admitted != storm || st.Evicted != storm-64 {
		t.Fatalf("stats = %+v", st)
	}
	// The dedup map is bounded alongside the ring.
	p.mu.Lock()
	keys := len(p.lastKey)
	p.mu.Unlock()
	if keys > 2*64 {
		t.Fatalf("dedup map holds %d keys, want <= %d", keys, 2*64)
	}
}

func TestHistoryFilters(t *testing.T) {
	clk := newFakeClock()
	p := New(Config{Now: clk.Now})
	h2 := types.HostID(2)
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second)
		reason := types.ReasonPoorPerf
		if i%2 == 1 {
			reason = types.ReasonPathConformance
		}
		p.Publish(alarm(1+i%3, uint16(i), reason))
	}
	if got := len(p.History(Filter{Reason: types.ReasonPathConformance})); got != 5 {
		t.Fatalf("reason filter matched %d, want 5", got)
	}
	if got := len(p.History(Filter{Host: &h2})); got != 3 {
		t.Fatalf("host filter matched %d, want 3", got)
	}
	if got := p.History(Filter{SinceID: 7}); len(got) != 3 || got[0].ID != 8 {
		t.Fatalf("since filter = %+v", got)
	}
	if got := p.History(Filter{Limit: 2}); len(got) != 2 || got[1].ID != 10 {
		t.Fatalf("limit filter = %+v", got)
	}
	from := time.Unix(1000, 0).Add(8 * time.Second)
	if got := len(p.History(Filter{From: from})); got != 3 {
		t.Fatalf("from filter matched %d, want 3", got)
	}
	if got := len(p.History(Filter{To: from})); got != 8 {
		t.Fatalf("to filter matched %d, want 8", got)
	}
}

func TestSubscriptions(t *testing.T) {
	p := New(Config{})
	sub := p.Subscribe(4)
	other := p.Subscribe(4)

	e1, _ := p.Publish(alarm(1, 1, types.ReasonPoorPerf))
	e2, _ := p.Publish(alarm(1, 2, types.ReasonPoorPerf))
	for _, s := range []*Subscription{sub, other} {
		if got := <-s.C(); got.ID != e1.ID {
			t.Fatalf("first delivery ID %d, want %d", got.ID, e1.ID)
		}
		if got := <-s.C(); got.ID != e2.ID {
			t.Fatalf("second delivery ID %d, want %d", got.ID, e2.ID)
		}
	}

	// A full buffer drops (and counts) instead of blocking Publish.
	for i := 0; i < 10; i++ {
		p.Publish(alarm(1, uint16(10+i), types.ReasonPoorPerf))
	}
	if d := sub.Dropped(); d != 6 {
		t.Fatalf("dropped %d, want 6", d)
	}
	if st := p.Stats(); st.StreamDropped != 12 || st.Subscribers != 2 {
		t.Fatalf("stats = %+v", st)
	}

	sub.Close()
	sub.Close() // idempotent
	if _, open := <-func() chan Entry { ch := make(chan Entry); go func() { close(ch) }(); return ch }(); open {
		t.Fatal("sanity")
	}
	// Closed subscriptions no longer receive.
	p.Publish(alarm(1, 99, types.ReasonPoorPerf))
	if st := p.Stats(); st.Subscribers != 1 {
		t.Fatalf("subscribers = %d after close, want 1", st.Subscribers)
	}
	other.Close()
}

// TestConcurrentStorm drives publishers, subscribers, history readers and
// subscription churn concurrently — the -race prover for the pipeline —
// and checks no goroutine survives.
func TestConcurrentStorm(t *testing.T) {
	before := runtime.NumGoroutine()
	p := New(Config{History: 256, Suppress: time.Second, Rate: 100_000})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Subscribers: some drain fast, some slowly (forcing drops).
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(slow bool) {
			defer wg.Done()
			sub := p.Subscribe(8)
			defer sub.Close()
			for {
				select {
				case <-stop:
					return
				case _, ok := <-sub.C():
					if !ok {
						return
					}
					if slow {
						time.Sleep(100 * time.Microsecond)
					}
				}
			}
		}(i%2 == 0)
	}
	// Publishers.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				p.Publish(types.Alarm{
					Host:   types.HostID(w),
					Flow:   types.FlowID{SrcIP: types.IP(i % 50), SrcPort: uint16(w), DstPort: 80, Proto: 6},
					Reason: types.ReasonPoorPerf,
				})
			}
		}(w)
	}
	// History readers + churner.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.History(Filter{Reason: types.ReasonPoorPerf, Limit: 10})
				p.Stats()
				s := p.Subscribe(1)
				s.Close()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Publishers finish on their own; stop the subscribers after them.
	for {
		select {
		case <-done:
			goto drained
		case <-time.After(time.Millisecond):
			st := p.Stats()
			if st.Received >= 16000 {
				close(stop)
				<-done
				goto drained
			}
		}
	}
drained:
	select {
	case <-stop:
	default:
		close(stop)
	}
	st := p.Stats()
	if st.Received != 16000 {
		t.Fatalf("received %d, want 16000", st.Received)
	}
	if st.Admitted+st.Suppressed+st.RateLimited != st.Received {
		t.Fatalf("counter mismatch: %+v", st)
	}
	if got := len(p.History(Filter{})); got > 256 {
		t.Fatalf("history grew to %d entries, cap 256", got)
	}
	if st.Subscribers != 0 {
		t.Fatalf("subscribers = %d after close, want 0", st.Subscribers)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHistoryPagination: streaming resume by SinceID never skips or
// duplicates entries while the ring advances.
func TestHistoryPagination(t *testing.T) {
	p := New(Config{History: 32})
	var cursor uint64
	var got []uint64
	for batch := 0; batch < 20; batch++ {
		for i := 0; i < 7; i++ {
			p.Publish(alarm(1, uint16(batch*7+i), types.ReasonPoorPerf))
		}
		for _, e := range p.History(Filter{SinceID: cursor}) {
			got = append(got, e.ID)
			cursor = e.ID
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("pagination gap: %d then %d", got[i-1], got[i])
		}
	}
	if len(got) != 140 {
		t.Fatalf("paged %d entries, want 140", len(got))
	}
}

func TestDefaults(t *testing.T) {
	p := New(Config{})
	if cap(p.ring) != DefaultHistory {
		t.Fatalf("default ring cap = %d", cap(p.ring))
	}
	// No suppression by default: identical alarms stay distinct.
	p.Publish(alarm(1, 1, types.ReasonPoorPerf))
	p.Publish(alarm(1, 1, types.ReasonPoorPerf))
	if got := len(p.History(Filter{})); got != 2 {
		t.Fatalf("default pipeline folded: %d entries, want 2", got)
	}
	if testing.Verbose() {
		fmt.Printf("stats: %+v\n", p.Stats())
	}
}
