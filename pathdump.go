// Package pathdump is a complete implementation of PathDump — the
// datacenter network debugger of Tammana, Agarwal and Lee (OSDI 2016) —
// together with every substrate it needs to run on a single machine: a
// FatTree/VL2 topology generator, the CherryPick trajectory-tagging
// scheme, a deterministic packet-level network simulator with failure
// injection, a TCP model, per-host agents (trajectory memory, trajectory
// cache, TIB storage and query engine, active TCP monitor), and a
// controller with direct and multi-level aggregation-tree queries.
//
// PathDump's thesis is that a large class of network debugging problems
// needs no sophisticated in-network machinery: switches only stamp
// packets with a few sampled link identifiers (two VLAN tags suffice for
// paths up to shortest+2), end-hosts record per-path flow statistics, and
// debugging applications slice and dice those records. This package's
// Cluster assembles the whole system:
//
//	c, _ := pathdump.NewFatTree(4, pathdump.Config{})
//	hosts := c.HostIDs()
//	c.StartFlow(hosts[0], hosts[12], 80, 1<<20, nil)
//	c.RunAll()
//	paths := c.GetPaths(hosts[12], flowID, pathdump.AnyLink, pathdump.AllTime)
//
// The Table-1 host API (GetFlows, GetPaths, GetCount, GetDuration,
// GetPoorTCPFlows) and controller API (Execute, ExecuteTree, InstallQuery,
// UninstallQuery) are exposed directly on Cluster; the debugging
// applications of §4 live in internal/apps and are re-exported through
// convenience wrappers.
package pathdump

import (
	"pathdump/internal/agent"
	"pathdump/internal/alarms"
	"pathdump/internal/controller"
	"pathdump/internal/netsim"
	"pathdump/internal/query"
	"pathdump/internal/tcp"
	"pathdump/internal/types"
)

// Core identifier and record types (see internal/types for full docs).
type (
	// SwitchID identifies a switch; HostID an edge device; IP an IPv4
	// address in host byte order.
	SwitchID = types.SwitchID
	// HostID identifies an end host.
	HostID = types.HostID
	// IP is an IPv4 address.
	IP = types.IP
	// FlowID is the 5-tuple.
	FlowID = types.FlowID
	// LinkID is a directed pair of adjacent switches (wildcards allowed).
	LinkID = types.LinkID
	// Path is a list of switch IDs.
	Path = types.Path
	// Flow pairs a FlowID with one of its paths.
	Flow = types.Flow
	// Time is virtual nanoseconds; TimeRange an inclusive interval.
	Time = types.Time
	// TimeRange is ⟨from, to⟩ with wildcard support.
	TimeRange = types.TimeRange
	// Record is one TIB entry.
	Record = types.Record
	// Alarm is an agent→controller event.
	Alarm = types.Alarm
	// Reason is an alarm reason code.
	Reason = types.Reason
	// AlarmEntry is one admitted alarm in the controller's bounded
	// history (ID, payload, fold count, receipt times).
	AlarmEntry = alarms.Entry
	// AlarmFilter selects alarm-history entries.
	AlarmFilter = alarms.Filter
	// AlarmPipeStats counts the alarm pipeline's traffic.
	AlarmPipeStats = alarms.Stats
	// AlarmSubscription is a live alarm feed (Cluster.SubscribeAlarms).
	AlarmSubscription = alarms.Subscription
	// Query is a controller→host query; Result its mergeable answer.
	Query = query.Query
	// Result is a query's (partial) answer.
	Result = query.Result
	// ExecStats reports modelled distributed-query cost.
	ExecStats = controller.ExecStats
	// LoopEvent describes a detected routing loop.
	LoopEvent = controller.LoopEvent
	// NetConfig parameterises the simulated fabric.
	NetConfig = netsim.Config
	// AgentConfig parameterises host agents.
	AgentConfig = agent.Config
	// TCPConfig parameterises the TCP model.
	TCPConfig = tcp.Config
	// Packet is one simulated packet (raw-injection API).
	Packet = netsim.Packet
	// Impairment is the per-link tc-style fault/shaping vector
	// (Cluster.SetImpairment).
	Impairment = netsim.Impairment
)

// Wildcards and time constants.
const (
	// WildcardSwitch matches any switch inside a LinkID.
	WildcardSwitch = types.WildcardSwitch
	// TimeEnd is the open upper bound of a TimeRange.
	TimeEnd = types.TimeEnd
	// Nanosecond..Second are virtual time units.
	Nanosecond  = types.Nanosecond
	Microsecond = types.Microsecond
	Millisecond = types.Millisecond
	Second      = types.Second
)

// AnyLink matches every link; AllTime every timestamp.
var (
	AnyLink = types.AnyLink
	AllTime = types.AllTime
)

// Alarm reason codes (§2.1).
const (
	ReasonPoorPerf        = types.ReasonPoorPerf
	ReasonPathConformance = types.ReasonPathConformance
	ReasonLongPath        = types.ReasonLongPath
	ReasonLoop            = types.ReasonLoop
	ReasonInvalidTraj     = types.ReasonInvalidTraj
	ReasonPolarized       = types.ReasonPolarized
	ReasonIncast          = types.ReasonIncast
	ReasonDDoS            = types.ReasonDDoS
)

// Query operations (compositions over the Table-1 host API).
const (
	OpFlows       = query.OpFlows
	OpPaths       = query.OpPaths
	OpCount       = query.OpCount
	OpDuration    = query.OpDuration
	OpPoorTCP     = query.OpPoorTCP
	OpFSD         = query.OpFSD
	OpTopK        = query.OpTopK
	OpConformance = query.OpConformance
	OpMatrix      = query.OpMatrix
	OpRecords     = query.OpRecords
)

// Since returns the range ⟨t, ?⟩.
func Since(t Time) TimeRange { return types.Since(t) }
