#!/usr/bin/env bash
# End-to-end smoke test against the real binaries: build pathdumpd and
# pathdumpctl, boot multi-host daemons (two of them with an injected-slow
# host), run real queries over HTTP and assert on the output.
#
# Covered scenarios:
#   1. healthy batched query — every host answers, stats line says so;
#   2. hedged query — a host whose *first* request stalls is rescued by
#      the duplicate request issued after -hedge-after, so the query still
#      returns every host's data (and reports the hedge);
#   3. -partial deadline run — a host that stalls forever is cut off by
#      the whole-query -timeout and the merged partial result of the
#      remaining hosts comes back with partial=true instead of an error;
#   5. snapshot pull — -pull-snapshot captures a live daemon's TIB over
#      GET /snapshot, a fresh pathdumpd -tib serves the restored store
#      offline, and a query against it returns the same data;
#   6. continuous monitoring — a pathdumpc controller daemon receives the
#      alarms of a TCP monitor installed on live daemons; the injected
#      wedged flow fires every period but the controller's suppression
#      window dedups the repeats, so pathdumpctl -watch sees exactly one
#      POOR_PERF alarm (with the fold count on the entry);
#   7. mixed-version wire fallback — a binary-offering client against a
#      -json-only daemon (stand-in for one predating the wire protocol)
#      and a -wire json client against a wire-enabled daemon both return
#      byte-identical output to the binary/binary pairing; the same
#      matrix covers the request side: the default client's binary
#      request bodies are 415-rejected by the -json-only daemon and
#      transparently retried as JSON, and a -wire json-req client keeps
#      JSON request bodies while still accepting binary replies;
#   8. impairment to alarm — a daemon boots with -impair wedging both
#      uplinks of the demo workload's first rack at 100% loss, a TCP
#      monitor is installed over HTTP, and the controller's history shows
#      the resulting POOR_PERF alarms with repeats folded by suppression;
#   9. observability plane — GET /metrics on a live pathdumpd exposes all
#      three planes (agent datapath counters, TIB store gauges, rpc
#      request series with traffic recorded), GET /metrics on pathdumpc
#      exposes the controller plane and the alarm pipeline, and /healthz
#      answers structured JSON on both.
#
# Readiness is polled via GET /healthz throughout — the daemons answer it
# as soon as their listener is up, before any query traffic.
#
# Runs standalone (bash scripts/e2e_smoke.sh) and as the CI e2e job.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT_A="${E2E_PORT_A:-8471}"   # healthy daemon, hosts 0,1
PORT_B="${E2E_PORT_B:-8472}"   # host 3 stalls forever
PORT_C="${E2E_PORT_C:-8473}"   # host 5 stalls on its first query only
PORT_D="${E2E_PORT_D:-8474}"   # offline daemon serving the pulled snapshot
PORT_E="${E2E_PORT_E:-8475}"   # pathdumpc controller daemon (alarm plane)
PORT_F="${E2E_PORT_F:-8476}"   # monitored daemon, hosts 6,7 (+ wedged flow)
PORT_G="${E2E_PORT_G:-8477}"   # -json-only daemon serving the pulled snapshot
PORT_H="${E2E_PORT_H:-8478}"   # pathdumpc controller for the impairment scenario
PORT_I="${E2E_PORT_I:-8479}"   # impaired daemon, hosts 0,1 behind lossy uplinks
BIN="$(mktemp -d)"
LOGS="$(mktemp -d)"

cleanup() {
  status=$?
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  if [ "$status" -ne 0 ]; then
    echo "=== daemon logs (failure) ==="
    tail -n 40 "$LOGS"/*.log 2>/dev/null || true
  fi
  rm -rf "$BIN" "$LOGS"
  exit "$status"
}
trap cleanup EXIT

# boot_daemon NAME BINARY ARGS... — start a daemon in the background,
# logging to $LOGS/NAME.log.
boot_daemon() {
  local name="$1"; shift
  local binary="$1"; shift
  "$BIN/$binary" "$@" >"$LOGS/$name.log" 2>&1 &
}

# wait_ready BASE_URL [ATTEMPTS] — poll GET /healthz until the daemon
# answers 200 (0.2 s per attempt; default 50, the demo-workload daemons
# use more).
wait_ready() {
  local url="$1/healthz" attempts="${2:-50}"
  for _ in $(seq 1 "$attempts"); do
    if curl -fs "$url" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "FAIL: $url never became ready"
  exit 1
}

echo "== build real binaries =="
go build -o "$BIN/pathdumpd" ./cmd/pathdumpd
go build -o "$BIN/pathdumpctl" ./cmd/pathdumpctl
go build -o "$BIN/pathdumpc" ./cmd/pathdumpc

echo "== boot daemons =="
boot_daemon a pathdumpd -hosts 0,1 -listen "127.0.0.1:$PORT_A" -demo
boot_daemon b pathdumpd -hosts 2,3 -listen "127.0.0.1:$PORT_B" -demo \
  -slow-host 3 -slow-delay 60s
boot_daemon c pathdumpd -hosts 4,5 -listen "127.0.0.1:$PORT_C" -demo \
  -slow-host 5 -slow-delay 60s -slow-first-only

for port in "$PORT_A" "$PORT_B" "$PORT_C"; do
  # demo workload simulation needs a moment
  wait_ready "http://127.0.0.1:$port" 150
done
echo "daemons ready"

A="http://127.0.0.1:$PORT_A"
B="http://127.0.0.1:$PORT_B"
C="http://127.0.0.1:$PORT_C"

echo
echo "== 1. healthy batched query (hosts 0,1,2 — no straggler in the set) =="
out="$("$BIN/pathdumpctl" -agents "0=$A,1=$A,2=$B" -timeout 30s topk -k 5)"
echo "$out"
grep -q "^#1 " <<<"$out" || { echo "FAIL: no top-k rows"; exit 1; }
grep -q "(3 hosts answered, 0 skipped, 0 hedged, partial=false" <<<"$out" \
  || { echo "FAIL: healthy query stats line wrong"; exit 1; }

echo
echo "== 2. hedged query beats the slow-first-only host (hosts 4,5) =="
start=$(date +%s)
out="$("$BIN/pathdumpctl" -agents "4=$C,5=$C" \
  -hedge-after 1s -timeout 30s -trace topk -k 5)"
took=$(( $(date +%s) - start ))
echo "$out"
echo "(took ${took}s wall-clock)"
grep -q "(2 hosts answered, 0 skipped, 1 hedged, partial=false" <<<"$out" \
  || { echo "FAIL: hedged query did not report full data + one hedge"; exit 1; }
# -trace prints the query's span tree; the hedge must show up as its own
# labelled span under the stalled host's rpc span.
grep -qE "^query trace=[0-9a-f]{16} op=topk" <<<"$out" \
  || { echo "FAIL: -trace printed no query span"; exit 1; }
grep -qE "^ +hedge host=h5" <<<"$out" \
  || { echo "FAIL: -trace did not label the hedged request's span"; exit 1; }
grep -qE "^ +scan .*records=" <<<"$out" \
  || { echo "FAIL: -trace carried no agent-side scan spans"; exit 1; }
# ~1 hedged round trip: the 60s stall must not show up in the wall clock.
[ "$took" -le 15 ] || { echo "FAIL: hedged query took ${took}s"; exit 1; }

echo
echo "== 3. -partial deadline run against the always-slow host (hosts 0,1,2,3) =="
start=$(date +%s)
out="$("$BIN/pathdumpctl" -agents "0=$A,1=$A,2=$B,3=$B" \
  -timeout 5s -partial topk -k 5)"
took=$(( $(date +%s) - start ))
echo "$out"
echo "(took ${took}s wall-clock)"
grep -q "partial=true" <<<"$out" \
  || { echo "FAIL: deadline run not marked partial"; exit 1; }
grep -qE "\([12] hosts answered, [23] skipped" <<<"$out" \
  || { echo "FAIL: partial run host accounting wrong"; exit 1; }
[ "$took" -le 20 ] || { echo "FAIL: partial run took ${took}s"; exit 1; }

echo
echo "== 4. without -partial the same deadline run fails loudly =="
if out="$("$BIN/pathdumpctl" -agents "0=$A,1=$A,2=$B,3=$B" \
    -timeout 5s topk -k 5 2>&1)"; then
  echo "$out"
  echo "FAIL: deadline run without -partial exited 0"
  exit 1
fi
grep -q "deadline exceeded" <<<"$out" \
  || { echo "FAIL: expected a deadline error, got: $out"; exit 1; }
echo "failed as expected: $(tail -n 1 <<<"$out")"

echo
echo "== 5. snapshot pull from a live daemon + offline query on the restore =="
SNAP="$LOGS/host0.tib"
out="$("$BIN/pathdumpctl" -agents "0=$A" -timeout 10s -pull-snapshot "$SNAP")"
echo "$out"
grep -qE "pulled [1-9][0-9]* snapshot bytes" <<<"$out" \
  || { echo "FAIL: snapshot pull reported no bytes"; exit 1; }
[ -s "$SNAP" ] || { echo "FAIL: snapshot file empty"; exit 1; }

boot_daemon d pathdumpd -host 0 -listen "127.0.0.1:$PORT_D" -tib "$SNAP"
wait_ready "http://127.0.0.1:$PORT_D"
grep -qE "snapshot .* [1-9][0-9]* TIB records in [1-9][0-9]* segments" "$LOGS/d.log" \
  || { echo "FAIL: snapshot daemon loaded no records/segments"; exit 1; }

out="$("$BIN/pathdumpctl" -agents "0=http://127.0.0.1:$PORT_D" -timeout 10s topk -k 5)"
echo "$out"
grep -q "^#1 " <<<"$out" || { echo "FAIL: offline top-k returned no rows"; exit 1; }
grep -q "(1 hosts answered, 0 skipped" <<<"$out" \
  || { echo "FAIL: offline query stats line wrong"; exit 1; }
# Live and restored answers agree on the top flow. (Capture first, then
# head: piping the CLI straight into head would SIGPIPE it under
# pipefail once head closes its end.)
live_out="$("$BIN/pathdumpctl" -agents "0=$A" -timeout 10s topk -k 1)"
live_top="$(head -n 1 <<<"$live_out")"
snap_top="$(head -n 1 <<<"$out")"
[ "$live_top" = "$snap_top" ] \
  || { echo "FAIL: top flow differs: live '$live_top' vs snapshot '$snap_top'"; exit 1; }

echo
echo "== 6. continuous monitoring: install TCP monitor, dedup at the controller, -watch =="
boot_daemon e pathdumpc -listen "127.0.0.1:$PORT_E" -suppress 60s -log-alarms
boot_daemon f pathdumpd -hosts 6,7 -listen "127.0.0.1:$PORT_F" \
  -controller "http://127.0.0.1:$PORT_E" -inject-poor-flow -trigger-every 100ms
E="http://127.0.0.1:$PORT_E"
F="http://127.0.0.1:$PORT_F"
wait_ready "$E"
wait_ready "$F"

out="$("$BIN/pathdumpctl" -agents "6=$F,7=$F" -timeout 10s \
  install -op poor_tcp -threshold 3 -period 200ms)"
echo "$out"
grep -q "host h6" <<<"$out" || { echo "FAIL: install reported no id for host 6"; exit 1; }

# The monitor fires every 200 ms of daemon virtual time (pumped from wall
# time); wait until the controller has folded several repeats.
folded=0
for _ in $(seq 1 50); do
  out="$("$BIN/pathdumpctl" -controller "$E" -alarms -reason POOR_PERF)"
  if grep -qE "x([3-9]|[0-9]{2,}) at" <<<"$out"; then
    folded=1
    break
  fi
  sleep 0.2
done
echo "$out"
[ "$folded" -eq 1 ] || { echo "FAIL: controller never folded repeated POOR_PERF firings"; exit 1; }
# Exactly one deduped entry: the wedged flow fires every period but the
# suppression window folds every repeat into entry #1.
count="$(grep -c "POOR_PERF" <<<"$out" || true)"
[ "$count" -eq 1 ] || { echo "FAIL: $count POOR_PERF history entries, want 1 (dedup broken)"; exit 1; }
grep -qE "\(1 shown; pipeline: [0-9]+ received, 1 admitted, [1-9][0-9]* suppressed" <<<"$out" \
  || { echo "FAIL: pipeline stats line wrong"; exit 1; }

# The live stream replays the same single deduped entry and nothing else.
out="$("$BIN/pathdumpctl" -controller "$E" -watch -since 0 -watch-for 3s)"
echo "$out"
count="$(grep -c "POOR_PERF" <<<"$out" || true)"
[ "$count" -eq 1 ] || { echo "FAIL: -watch saw $count POOR_PERF alarms, want exactly 1"; exit 1; }

echo
echo "== 7. mixed-version wire fallback: binary client vs -json-only daemon =="
# PORT_D (scenario 5) speaks the binary wire protocol; PORT_G serves the
# same snapshot but answers JSON only, standing in for a daemon that
# predates the wire protocol. The matrix now covers both directions of
# the negotiation: bin_json sends binary *request* bodies at the
# -json-only daemon (415-rejected, transparently retried as JSON) and
# accepts only JSON replies back; -wire json-req keeps request bodies
# JSON while still negotiating binary replies; -wire json disables both
# directions. Every pairing must produce byte-identical output.
boot_daemon g pathdumpd -host 0 -listen "127.0.0.1:$PORT_G" -tib "$SNAP" -json-only
wait_ready "http://127.0.0.1:$PORT_G"

D="http://127.0.0.1:$PORT_D"
G="http://127.0.0.1:$PORT_G"
bin_bin="$("$BIN/pathdumpctl" -agents "0=$D" -timeout 10s topk -k 5)"
bin_json="$("$BIN/pathdumpctl" -agents "0=$G" -timeout 10s topk -k 5)"
json_bin="$("$BIN/pathdumpctl" -agents "0=$D" -wire json -timeout 10s topk -k 5)"
json_json="$("$BIN/pathdumpctl" -agents "0=$G" -wire json -timeout 10s topk -k 5)"
jsonreq_bin="$("$BIN/pathdumpctl" -agents "0=$D" -wire json-req -timeout 10s topk -k 5)"
jsonreq_json="$("$BIN/pathdumpctl" -agents "0=$G" -wire json-req -timeout 10s topk -k 5)"
echo "$bin_bin"
grep -q "^#1 " <<<"$bin_bin" || { echo "FAIL: wire query returned no rows"; exit 1; }
for pair in bin_json json_bin json_json jsonreq_bin jsonreq_json; do
  [ "$bin_bin" = "${!pair}" ] \
    || { echo "FAIL: $pair output differs from binary/binary:"; echo "${!pair}"; exit 1; }
done
echo "all six client/daemon encoding pairings agree"

echo
echo "== 8. impairment to alarm: -impair wedges a rack, monitor raises POOR_PERF =="
# Switch IDs in the daemon's 4-ary fat tree: ToR 0 serves hosts 0,1 and
# uplinks to aggregation switches 8 and 9. 100% loss on both uplinks
# wedges every inter-rack flow the demo workload starts at that rack, so
# an installed TCP monitor keeps reporting the stuck senders and the
# controller folds the repeats.
boot_daemon h pathdumpc -listen "127.0.0.1:$PORT_H" -suppress 60s -log-alarms
boot_daemon i pathdumpd -hosts 0,1 -listen "127.0.0.1:$PORT_I" -demo \
  -impair "0-8:loss=1;0-9:loss=1" \
  -controller "http://127.0.0.1:$PORT_H" -trigger-every 100ms
H="http://127.0.0.1:$PORT_H"
I="http://127.0.0.1:$PORT_I"
wait_ready "$H"
wait_ready "$I" 150 # demo workload again
grep -q "2 link impairments injected" "$LOGS/i.log" \
  || { echo "FAIL: daemon did not report the injected impairments"; exit 1; }

out="$("$BIN/pathdumpctl" -agents "0=$I,1=$I" -timeout 10s \
  install -op poor_tcp -threshold 3 -period 200ms)"
echo "$out"
grep -q "host h0" <<<"$out" || { echo "FAIL: install reported no id for host 0"; exit 1; }

# Wait until the impairment-wedged flows surface as folded POOR_PERF
# alarms at the controller.
folded=0
for _ in $(seq 1 50); do
  out="$("$BIN/pathdumpctl" -controller "$H" -alarms -reason POOR_PERF)"
  if grep -qE "x([2-9]|[0-9]{2,}) at" <<<"$out"; then
    folded=1
    break
  fi
  sleep 0.2
done
# The wedged rack produces many distinct poor flows; show the pipeline
# summary rather than hundreds of entries.
echo "POOR_PERF entries: $(grep -c POOR_PERF <<<"$out" || true)"
tail -n 1 <<<"$out"
[ "$folded" -eq 1 ] || { echo "FAIL: impaired rack never produced folded POOR_PERF alarms"; exit 1; }
# Suppression must be doing real work: repeats folded, none slipping
# through as extra admissions.
grep -qE "pipeline: [0-9]+ received, [0-9]+ admitted, [1-9][0-9]* suppressed" <<<"$out" \
  || { echo "FAIL: impairment alarms not suppressed/folded"; exit 1; }

echo
echo "== 9. observability plane: /metrics covers all three planes, /healthz is structured =="
# Daemon A has served the demo workload and several real queries by now;
# its exposition must carry the agent datapath, the TIB store, and the
# rpc middleware's per-op traffic.
metrics="$(curl -fs "$A/metrics")"
for series in \
  'pathdump_agent_packets_seen\{host="0"\} [1-9]' \
  'pathdump_agent_records_stored\{host="0"\} [1-9]' \
  'pathdump_tib_records\{host="0"\} [1-9]' \
  'pathdump_tib_segments\{host="0"\} [1-9]' \
  'pathdump_rpc_requests_total\{op="query",enc="wire"\} [1-9]' \
  'pathdump_rpc_request_seconds_count\{op="query"\} [1-9]' \
  'pathdump_rpc_response_bytes_sum\{op="query"\} [1-9]'; do
  grep -qE "^$series" <<<"$metrics" \
    || { echo "FAIL: pathdumpd /metrics missing/zero: $series"; exit 1; }
done
echo "pathdumpd exposes $(grep -c '^pathdump_' <<<"$metrics") pathdump_* series (agent, tib, rpc planes OK)"

# The alarm-plane controller: alarm pipeline gauges fed by scenario 6's
# POOR_PERF storm, controller-plane series registered, rpc plane counting
# the /alarm ingest posts.
metrics="$(curl -fs "$E/metrics")"
for series in \
  'pathdump_alarms_received [1-9]' \
  'pathdump_alarms_admitted [1-9]' \
  'pathdump_alarms_suppressed [1-9]' \
  'pathdump_controller_queries_total [0-9]' \
  'pathdump_rpc_requests_total\{op="alarm",enc="json"\} [1-9]'; do
  grep -qE "^$series" <<<"$metrics" \
    || { echo "FAIL: pathdumpc /metrics missing/zero: $series"; exit 1; }
done
echo "pathdumpc exposes the controller plane + alarm pipeline (rpc ingest counted)"

# Structured health on both daemon flavours.
curl -fs "$A/healthz" | grep -q '"status":"ok"' \
  || { echo "FAIL: pathdumpd /healthz not ok"; exit 1; }
curl -fs "$A/healthz" | grep -qE '"records":[1-9]' \
  || { echo "FAIL: pathdumpd /healthz reports no records"; exit 1; }
curl -fs "$E/healthz" | grep -q '"status":"ok"' \
  || { echo "FAIL: pathdumpc /healthz not ok"; exit 1; }

echo
echo "e2e smoke: PASS"
